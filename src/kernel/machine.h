// Machine: the full simulated system — physical memory, MMU, hypervisor,
// CPU, booted Camouflage kernel, user programs in their own address spaces,
// and registered loadable modules.
//
// This is the facade examples, benches and the attack framework build on:
// construct, add user programs / modules, boot(), run(), then inspect guest
// state through the kernel symbol table.
#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "core/bootloader.h"
#include "cpu/cpu.h"
#include "hyp/hypervisor.h"
#include "kernel/abi.h"
#include "kernel/image_cache.h"
#include "kernel/kernel_builder.h"
#include "kernel/snapshot.h"
#include "mem/mmu.h"
#include "obj/object.h"
#include "obs/collector.h"

namespace camo::kernel {

struct MachineConfig {
  KernelConfig kernel;
  cpu::Cpu::Config cpu;
  obs::Options obs;                  ///< observability (off by default)
  uint64_t seed = 0xC0FFEE;          ///< boot entropy (kernel + user keys)
  uint64_t phys_bytes = 64ull << 20;
  uint64_t preempt_timeslice = 20000;  ///< cycles, when kernel.preempt is set
  /// Guest core count. 1 (the default) is the classic uniprocessor machine,
  /// bit-for-bit identical to the pre-SMP implementation. N > 1 instantiates
  /// N cores sharing one physical memory and stage-2 view, each with its own
  /// stage-1 state, key registers/bank, micro-TLB and superblock cache,
  /// driven by a deterministic round-robin quantum interleaver. Kept
  /// coherent with kernel.num_cpus (either setting raises the other).
  unsigned cores = 1;
  /// Interleaver quantum: max instructions one core retires before the next
  /// core runs. Part of the simulated contract (like preempt_timeslice):
  /// results are a pure function of (config, cores) — never host timing.
  uint64_t smp_quantum = 10000;
  /// Identity of this machine within a multi-machine process (fleet task
  /// index). Namespaces the per-machine host gauges ("host.throughput.m<id>")
  /// so merged fleet registries keep every machine's reading distinct.
  unsigned machine_id = 0;
  /// Optional shared prepared-kernel cache: when set, boot() reuses the
  /// built + verified + signed kernel image of any earlier machine with an
  /// identical configuration instead of preparing its own (DESIGN.md §3d).
  /// Guest-visible state is identical either way.
  std::shared_ptr<ImageCache> image_cache;
  /// Optional shared post-boot snapshot cache (DESIGN.md §3j): when set, the
  /// machine is constructed with sparse copy-on-write physical memory and
  /// boot() either boots fresh (first machine per boot_signature(), whose
  /// snapshot seeds the cache) or forks — adopting the shared page store and
  /// restoring all architectural state instead of re-running the bootloader.
  /// Guest-visible outcomes (machine fingerprint, trace bytes, audit stream)
  /// are bit-identical either way; only host boot cost changes.
  std::shared_ptr<SnapshotCache> snapshot_cache;
};

/// User stack placement (top of the mapped user stack region).
inline constexpr uint64_t kUserStackTop = 0x0000000080000000ull;
inline constexpr uint64_t kUserStackSize = 0x10000;

class Machine {
 public:
  explicit Machine(MachineConfig cfg = {});

  // ---- pre-boot configuration ----
  /// Add a user thread running `prog` (un-instrumented; the user ABI is
  /// preserved, R5) in its own address space. Returns the pid (1-based).
  /// `entry` is the symbol execution starts at.
  int add_user_program(obj::Program prog, const std::string& entry = "_ustart");
  /// Register a loadable module (instrumented with the kernel's protection
  /// config, §4.1). Returns the module id for Sys::InitModule.
  int register_module(const std::string& name, obj::Program prog);

  /// Build + verify + load + start the kernel. Throws on verification
  /// failure. After boot() the CPU sits at the kernel entry point. With
  /// MachineConfig::snapshot_cache set this transparently boots a template
  /// once per boot_signature() and forks every subsequent machine from its
  /// snapshot.
  void boot();

  // ---- snapshot/fork (DESIGN.md §3j) ----
  /// Cache key covering every input that shapes post-boot machine state:
  /// the ImageCache key (kernel config, seed, task table incl. per-task
  /// keys), physical size, preempt timeslice, CPU model/engine flags,
  /// observability options, and a hash of the user image bytes. machine_id
  /// and smp_quantum are deliberately excluded — both are applied per
  /// machine after fork.
  std::string boot_signature() const;
  /// Capture the full machine state (page store, per-core architectural
  /// state, hypervisor state, boot-era trace/audit events). Requires boot().
  MachineSnapshot take_snapshot();
  /// Become `snap`: adopt its page store copy-on-write, restore per-core and
  /// hypervisor state, rewire each core's MMU, and replay the boot-era
  /// observability events. Only legal on a machine that has not booted —
  /// fresh machines carry no stale predecode/superblock state, so the
  /// invalidation contracts hold trivially. The caller must have added the
  /// exact user programs/modules the snapshot's template had (the factory
  /// symmetry run_fleet relies on).
  void fork(const MachineSnapshot& snap);
  /// True when this machine was populated by fork() rather than a boot.
  bool forked() const { return forked_; }

  // ---- execution ----
  /// Run until halt or step budget exhaustion. Returns true if halted.
  /// Host wall-clock spent inside the CPU loop is accumulated for the
  /// throughput gauge (host-side only; simulated state is unaffected).
  bool run(uint64_t max_steps = 200'000'000);

  /// Total host seconds spent in run() so far.
  double host_seconds() const { return host_seconds_; }
  /// Guest instructions retired per host second across all run() calls and
  /// all cores (0 before the first run). Also published as the
  /// "host.throughput" gauge on stats() when observability is enabled.
  double host_throughput() const {
    return host_seconds_ > 0
               ? static_cast<double>(total_retired()) / host_seconds_
               : 0;
  }

  /// Machine-level halt: a single-core machine is halted when its core is;
  /// a multi-core machine is halted when any core halted abnormally (panic
  /// stops the machine) or every core reached its normal HLT.
  bool halted() const;
  /// First abnormal halt code in core order, else core 0's code.
  uint64_t halt_code() const;
  const std::string& console() const { return hv_.console(); }

  // ---- component access ----
  cpu::Cpu& cpu() { return cpu_; }
  const cpu::Cpu& cpu() const { return cpu_; }
  /// Number of guest cores (== config().cores after coherence).
  unsigned cores() const { return 1 + static_cast<unsigned>(secondary_.size()); }
  /// Core `c` (0 is the primary — same object cpu() returns).
  cpu::Cpu& core(unsigned c);
  const cpu::Cpu& core(unsigned c) const;
  /// Instructions retired summed over all cores (what fleet stats report).
  uint64_t total_retired() const;
  mem::Mmu& mmu() { return mmu_; }
  hyp::Hypervisor& hyp() { return hv_; }
  const core::BootResult& boot_result() const { return *boot_; }
  const MachineConfig& config() const { return cfg_; }

  /// Per-machine observability (trace ring, metrics, profiler). Non-null
  /// only when MachineConfig::obs.enabled was set before boot().
  obs::Collector* stats() { return stats_.get(); }
  const obs::Collector* stats() const { return stats_.get(); }

  /// Fill a flight snapshot with the current architectural state (registers,
  /// PSTATE, key banks with provenance, MMU fetch-epoch generations).
  /// Everything read is guest-deterministic; works with observability off.
  /// This is both the flight recorder's state provider and the divergence
  /// bisector's digest source (obs/digest.h).
  void fill_snapshot(obs::FlightSnapshot& s) const;

  // ---- guest state inspection / manipulation (host-side) ----
  uint64_t kernel_symbol(const std::string& name) const;
  uint64_t read_u64(uint64_t va) const;
  void write_u64(uint64_t va, uint64_t value);  ///< the attacker's primitive
  uint64_t read_global(const std::string& sym) const;
  void write_global(const std::string& sym, uint64_t value);
  /// Address of the task struct for `pid`.
  uint64_t task_struct(unsigned pid) const;
  /// Address of file_table[fd].
  uint64_t file_struct(unsigned fd) const;
  /// Symbol address within pid's user image (1-based pid).
  uint64_t user_symbol(unsigned pid, const std::string& name) const;
  /// Read a u64 from pid's user address space (any current active space).
  uint64_t read_user_u64(unsigned pid, uint64_t va);

 private:
  void boot_fresh();
  void attach_observability();
  void annotate_coverage_regions();

  MachineConfig cfg_;
  mem::PhysicalMemory pm_;
  mem::Mmu mmu_;
  hyp::Hypervisor hv_;
  cpu::Cpu cpu_;
  /// Cores 1..N-1: own stage-1 Mmu (sharing pm_ and the hypervisor's kernel
  /// map + stage-2 overlay) and own Cpu (own key bank, micro-TLB, superblock
  /// cache). Core 0 stays cpu_/mmu_ so every existing accessor is unchanged.
  struct SecondaryCore {
    std::unique_ptr<mem::Mmu> mmu;
    std::unique_ptr<cpu::Cpu> cpu;
  };
  std::vector<SecondaryCore> secondary_;
  /// Core the interleaver ran most recently (snapshot attribution).
  unsigned last_core_ = 0;
  KernelBuilder kb_;
  std::unique_ptr<obs::Collector> stats_;
  /// Shared with the snapshot when forked (BootResult is immutable after
  /// boot; every consumer reads through const access).
  std::shared_ptr<const core::BootResult> boot_;
  std::vector<obj::Image> user_images_;  ///< indexed by pid - 1
  std::vector<int> user_spaces_;
  unsigned next_pid_ = 1;
  double host_seconds_ = 0;
  bool forked_ = false;
  bool snap_hist_recorded_ = false;  ///< hist.snap.cow_pages once per machine
  /// This machine's boot built the shared prepared kernel (image-cache
  /// miss) rather than installing an earlier machine's (hit). Meaningful
  /// only when config().image_cache is set and the machine was not forked.
  bool imgcache_built_ = false;
};

}  // namespace camo::kernel
