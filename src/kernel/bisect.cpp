#include "kernel/bisect.h"

#include <algorithm>
#include <memory>

#include "obs/digest.h"

namespace camo::kernel {

namespace {

std::unique_ptr<Machine> build(const BisectSide& side,
                               const std::shared_ptr<ImageCache>& cache,
                               size_t ring_capacity) {
  MachineConfig cfg = side.cfg;
  // Observability on: probes need the flight ring for the final report and
  // attaching sinks never changes simulated state. Profilers are dead
  // weight here, so they stay off regardless of the caller's settings.
  cfg.obs.enabled = true;
  cfg.obs.flight_capacity = ring_capacity;
  cfg.obs.profile = false;
  cfg.obs.callgraph = false;
  if (!cfg.image_cache) cfg.image_cache = cache;
  auto m = std::make_unique<Machine>(cfg);
  if (side.setup) side.setup(*m);
  m->boot();
  if (side.prepare) side.prepare(*m);
  return m;
}

/// Run until `target` total retirements (or halt). Cpu::run consumes budget
/// on interrupt deliveries without retiring, so a single call can come up
/// short; the loop re-issues the remainder. The split-budget guarantee
/// makes the state at the boundary independent of this slicing.
void run_to(Machine& m, uint64_t target) {
  while (!m.halted() && m.cpu().retired() < target)
    if (m.cpu().run(target - m.cpu().retired()) == 0 && m.halted()) break;
}

/// Architectural identity at a retirement boundary: the snapshot digest
/// plus the halt state (a machine sitting on a halt instruction and one
/// that just executed it can otherwise digest equal).
struct Probe {
  uint64_t digest = 0;
  bool halted = false;
  uint64_t halt_code = 0;
  bool operator==(const Probe& o) const {
    return digest == o.digest && halted == o.halted &&
           halt_code == o.halt_code;
  }
  bool operator!=(const Probe& o) const { return !(*this == o); }
};

Probe probe_of(const Machine& m) {
  obs::FlightSnapshot s;
  m.fill_snapshot(s);
  Probe p;
  p.digest = obs::snapshot_digest(s, m.cpu().cycles(), m.cpu().retired());
  p.halted = m.halted();
  p.halt_code = m.halted() ? m.halt_code() : 0;
  return p;
}

void fill_side(obs::DivergenceSide& out, const Machine& m) {
  obs::FlightSnapshot s;
  m.fill_snapshot(s);
  out.state = s;
  out.digest = obs::snapshot_digest(s, m.cpu().cycles(), m.cpu().retired());
  out.cycles = m.cpu().cycles();
  out.retired = m.cpu().retired();
  out.halted = m.halted();
  if (const obs::Collector* st = m.stats())
    out.ring = st->flight().live_ring();
}

}  // namespace

obs::DivergenceReport bisect_divergence(const BisectSide& a,
                                        const BisectSide& b,
                                        const BisectOptions& opts) {
  const uint64_t interval = opts.digest_interval == 0 ? 1 : opts.digest_interval;
  auto cache = std::make_shared<ImageCache>();

  obs::DivergenceReport rep;
  rep.digest_interval = interval;
  rep.a.label = a.label;
  rep.b.label = b.label;

  // Forward scan with one live pair, windows of `interval` retirements.
  auto ma = build(a, cache, opts.ring_capacity);
  auto mb = build(b, cache, opts.ring_capacity);
  uint64_t lo = 0;  // last verified-equal retirement count
  uint64_t hi = 0;  // first known-divergent checkpoint
  bool diverged = probe_of(*ma) != probe_of(*mb);  // boot-state check
  if (!diverged) {
    uint64_t pos = 0;
    while (pos < opts.max_retired) {
      const uint64_t next = std::min(pos + interval, opts.max_retired);
      run_to(*ma, next);
      run_to(*mb, next);
      if (probe_of(*ma) != probe_of(*mb)) {
        diverged = true;
        hi = next;
        break;
      }
      // Equal digests fold in the retired counters, so both sides sit at
      // the same count here.
      lo = ma->cpu().retired();
      pos = next;
      if (ma->halted() && mb->halted()) break;  // both done, still equal
    }
  }

  if (!diverged) {
    rep.diverged = false;
    rep.compared = lo;
    fill_side(rep.a, *ma);
    fill_side(rep.b, *mb);
    rep.a.label = a.label;
    rep.b.label = b.label;
    return rep;
  }

  // Binary search (lo, hi] with fresh probe pairs: probe(lo) equal,
  // probe(hi) divergent. Each probe re-runs from boot to the midpoint;
  // the image cache makes that install + execute, not rebuild + re-sign.
  while (hi - lo > 1) {
    const uint64_t mid = lo + (hi - lo) / 2;
    auto pa = build(a, cache, opts.ring_capacity);
    auto pb = build(b, cache, opts.ring_capacity);
    run_to(*pa, mid);
    run_to(*pb, mid);
    if (probe_of(*pa) == probe_of(*pb))
      lo = mid;
    else
      hi = mid;
  }

  // Final capture at the divergence point with a fresh pair.
  auto fa = build(a, cache, opts.ring_capacity);
  auto fb = build(b, cache, opts.ring_capacity);
  run_to(*fa, hi);
  run_to(*fb, hi);
  rep.diverged = true;
  rep.first_divergent = hi;
  rep.compared = lo;
  fill_side(rep.a, *fa);
  fill_side(rep.b, *fb);
  rep.a.label = a.label;
  rep.b.label = b.label;
  return rep;
}

}  // namespace camo::kernel
