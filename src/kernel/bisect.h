// Divergence bisector (DESIGN.md §3g).
//
// Given two Machine configurations that are *supposed* to execute
// identically (superblocks on/off, fast_path on/off, a replayed flight
// bundle vs. a fresh boot), the bisector finds the first retired
// instruction after which their architectural states differ:
//
//  1. forward scan: run both machines in lockstep windows of
//     `digest_interval` retirements, comparing obs::snapshot_digest at
//     every checkpoint (cheap: one snapshot walk per window);
//  2. binary search: inside the first divergent window, re-run *fresh*
//     machine pairs to the midpoint retirement count and compare digests —
//     legal because Cpu::run's split-budget guarantee makes the state at
//     any retirement boundary independent of how run() calls were sliced;
//  3. capture: re-run a final fresh pair to the divergence point and
//     export both sides' snapshots and last-K retire rings as a
//     `camo-div/v1` bundle (obs/divergence.h).
//
// Probes share one kernel::ImageCache, so the kernel is built, verified
// and signed once per distinct configuration — each probe only pays
// install + execution.
#pragma once

#include <cstdint>
#include <functional>
#include <string>

#include "kernel/machine.h"
#include "obs/divergence.h"

namespace camo::kernel {

/// One side of the comparison. `setup` runs pre-boot (add user programs,
/// register modules); `prepare` runs post-boot (breakpoints, deliberate
/// perturbations — kernel_symbol() needs a booted machine).
struct BisectSide {
  MachineConfig cfg;
  std::string label;
  std::function<void(Machine&)> setup;
  std::function<void(Machine&)> prepare;
};

struct BisectOptions {
  /// Checkpoint spacing for the forward scan. Larger intervals make the
  /// scan cheaper (fewer snapshot walks) but widen the window the binary
  /// search must split: total work is O(run/N) scan + O(K·log2 N) probe
  /// re-runs of up to `first_divergent` retirements each. See DESIGN.md §3g.
  uint64_t digest_interval = 2048;
  /// Retirement budget per side; the scan stops (converged) at this count.
  uint64_t max_retired = 20'000'000;
  /// Flight-ring depth captured per side in the final report.
  size_t ring_capacity = 64;
};

/// Bisect two configurations to their first divergent retired instruction.
/// Returns a report with diverged=false when the runs stay digest-equal
/// through both halting (or the budget). Observability is forced on for
/// both sides (coverage stays off; attaching sinks never changes simulated
/// state, so the comparison measures only guest divergence).
obs::DivergenceReport bisect_divergence(const BisectSide& a,
                                        const BisectSide& b,
                                        const BisectOptions& opts = {});

}  // namespace camo::kernel
