#include "kernel/snapshot.h"

namespace camo::kernel {

std::shared_ptr<const MachineSnapshot> SnapshotCache::get(
    const std::string& key,
    const std::function<MachineSnapshot()>& build) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = entries_.find(key);
  if (it != entries_.end()) {
    ++stats_.hits;
    return it->second;
  }
  ++stats_.misses;
  auto snap = std::make_shared<const MachineSnapshot>(build());
  entries_.emplace(key, snap);
  return snap;
}

SnapshotCache::Stats SnapshotCache::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

size_t SnapshotCache::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return entries_.size();
}

}  // namespace camo::kernel
