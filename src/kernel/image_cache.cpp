#include "kernel/image_cache.h"

#include "support/format.h"

namespace camo::kernel {

std::shared_ptr<const core::PreparedKernel> ImageCache::get(
    const std::string& key,
    const std::function<core::PreparedKernel()>& build) {
  std::lock_guard<std::mutex> lock(mu_);
  const auto it = entries_.find(key);
  if (it != entries_.end()) {
    ++stats_.hits;
    return it->second;
  }
  ++stats_.misses;
  auto prepared = std::make_shared<const core::PreparedKernel>(build());
  entries_.emplace(key, prepared);
  return prepared;
}

std::string ImageCache::key_for(const KernelConfig& cfg, uint64_t seed,
                                const std::vector<TaskSpec>& tasks) {
  const compiler::ProtectionConfig& p = cfg.protection;
  std::string key = strformat(
      "bw=%u fwd=%u dfi=%u compat=%u blrab=%u zeromod=%u thr=%u log=%u "
      "preempt=%u tf=%u bank=%u seed=%llx",
      static_cast<unsigned>(p.backward), p.forward_cfi ? 1u : 0u,
      p.dfi ? 1u : 0u, p.compat_mode ? 1u : 0u,
      p.combined_branches ? 1u : 0u, p.apple_zero_modifier ? 1u : 0u,
      cfg.pac_failure_threshold, cfg.log_pac_failures ? 1u : 0u,
      cfg.preempt ? 1u : 0u, cfg.protect_trapframe ? 1u : 0u,
      cfg.banked_keys ? 1u : 0u, static_cast<unsigned long long>(seed));
  // Appended (rather than inline) and only when multi-core so every
  // uniprocessor key is byte-identical to the pre-SMP scheme: caches shared
  // across old and new callers keep hitting.
  if (cfg.num_cpus > 1) key += strformat(" cpus=%u", cfg.num_cpus);
  for (const TaskSpec& t : tasks) {
    key += strformat(" t=%llx,%llx,%llx",
                     static_cast<unsigned long long>(t.user_pc),
                     static_cast<unsigned long long>(t.user_sp),
                     static_cast<unsigned long long>(t.space_id));
    for (const uint64_t k : t.user_keys)
      key += strformat(",%llx", static_cast<unsigned long long>(k));
  }
  return key;
}

ImageCache::Stats ImageCache::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

size_t ImageCache::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return entries_.size();
}

}  // namespace camo::kernel
