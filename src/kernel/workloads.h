// User-space workload programs for the evaluation (§6.1).
//
// Each function returns an obj::Program for one EL0 thread. The lmbench-style
// micro-benchmarks (Figure 3) stress single syscalls; the three macro
// workloads (Figure 4) reproduce the paper's user/kernel time mixes:
//   * image_resize — "JPEG picture resize": predominantly user computation,
//   * package_build — "Debian package build": balanced compute + syscalls,
//   * download — "network download": a tight kernel-dominated read loop.
#pragma once

#include <cstdint>

#include "kernel/abi.h"
#include "obj/object.h"

namespace camo::kernel::workloads {

/// lmbench lat_syscall null: `iters` getpid calls.
obj::Program null_syscall(uint64_t iters);

/// lmbench lat_syscall read: read `chunk` bytes per iteration from a file of
/// the given kind.
obj::Program read_file(uint64_t iters, uint64_t chunk,
                       FileKind kind = FileKind::Null);

/// lmbench lat_syscall write.
obj::Program write_file(uint64_t iters, uint64_t chunk,
                        FileKind kind = FileKind::Null);

/// lmbench lat_syscall open/close.
obj::Program open_close(uint64_t iters);

/// lmbench lat_syscall stat.
obj::Program stat_file(uint64_t iters);

/// lmbench lat_ctx: yields `iters` times (pair two of these for ping-pong).
obj::Program yield_loop(uint64_t iters);

/// Exercises the DECLARE_WORK path (§4.6).
obj::Program queue_work(uint64_t iters);

/// Exercises the writable hook pointer (§4.4).
obj::Program call_hook(uint64_t iters);

/// Loads module `id` then exits (Sys::InitModule). Result is written to the
/// console as 'Y'/'N'.
obj::Program load_module(uint64_t module_id);

/// Figure 4 workloads.
obj::Program image_resize(uint64_t rows);
obj::Program package_build(uint64_t units);
obj::Program download(uint64_t chunks);

}  // namespace camo::kernel::workloads
