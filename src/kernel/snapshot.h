// Machine snapshot/fork (DESIGN.md §3j).
//
// A MachineSnapshot is everything needed to stamp out an already-booted
// machine without re-running the bootloader: the shared immutable page store
// (mem::PageStore — forks are copy-on-write views of it), full architectural
// state per core, the hypervisor's translation/allocator/module state, and
// the boot-era observability events (trace + audit) so a fork's collector
// replays them and its merged streams are byte-identical to a fresh boot's.
//
// The SnapshotCache mirrors ImageCache: immutable entries keyed by every
// input of boot (Machine::boot_signature() — kernel config, seed, task
// table, physical size, CPU/engine flags, observability options, user image
// bytes), no invalidation, get() builds under the lock so concurrent first
// boots of one configuration serialize into a single template boot.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/bootloader.h"
#include "cpu/cpu.h"
#include "hyp/hypervisor.h"
#include "mem/phys.h"
#include "obs/audit.h"
#include "obs/trace.h"

namespace camo::kernel {

/// Immutable post-boot machine image. Shared by every fork; never mutated
/// after capture (forks privatize pages on write, never through this).
struct MachineSnapshot {
  std::shared_ptr<const mem::PageStore> pages;
  std::vector<cpu::Cpu::CoreState> cores;  ///< index = core id
  hyp::Hypervisor::State hv;
  /// Per-core active user-space id the core's Mmu pointed at (-1 = none);
  /// fork rewires each core's user map from this by id, not by pointer.
  std::vector<int> user_map;
  /// Core the interleaver ran most recently (mid-run snapshots).
  unsigned last_core = 0;
  std::shared_ptr<const core::BootResult> boot;
  /// Boot-era observability events, replayed into each fork's collector so
  /// trace-ring/audit-log bytes match a fresh boot exactly.
  std::vector<obs::TraceEvent> boot_trace;
  std::vector<obs::AuditEvent> boot_audit;
};

class SnapshotCache {
 public:
  struct Stats {
    uint64_t hits = 0;
    uint64_t misses = 0;  ///< template boots performed
  };

  /// Get-or-build the snapshot for `key`. `build` runs at most once per key
  /// for the cache's lifetime (the caller boots a template machine inside
  /// it). Thread-safe; builds serialize under the lock, which is the point:
  /// N workers racing to boot one configuration collapse into one boot.
  std::shared_ptr<const MachineSnapshot> get(
      const std::string& key,
      const std::function<MachineSnapshot()>& build);

  Stats stats() const;
  size_t size() const;

 private:
  mutable std::mutex mu_;
  std::unordered_map<std::string, std::shared_ptr<const MachineSnapshot>>
      entries_;
  Stats stats_;
};

}  // namespace camo::kernel
