#include "kernel/workloads.h"

#include "assembler/builder.h"

namespace camo::kernel::workloads {

using assembler::FunctionBuilder;
using assembler::Label;

namespace {

void svc_call(FunctionBuilder& f, Sys nr) {
  f.movz(8, static_cast<uint16_t>(nr), 0);
  f.svc(0);
}

void sys_exit(FunctionBuilder& f) { svc_call(f, Sys::Exit); }

/// Standard scaffold: program with `_ustart`, a 4 KiB user buffer and a
/// loop register convention (x19 = remaining iterations).
obj::Program scaffold(FunctionBuilder** out) {
  obj::Program p;
  auto& f = p.add_function("_ustart");
  p.add_bss("ubuf", 4096, 16);
  *out = &f;
  return p;
}

}  // namespace

obj::Program null_syscall(uint64_t iters) {
  FunctionBuilder* f;
  obj::Program p = scaffold(&f);
  const Label loop = f->make_label();
  f->mov_imm(19, iters);
  f->bind(loop);
  svc_call(*f, Sys::GetPid);
  f->sub_i(19, 19, 1);
  f->cbnz(19, loop);
  sys_exit(*f);
  return p;
}

namespace {
obj::Program rw_file(uint64_t iters, uint64_t chunk, FileKind kind,
                     bool write) {
  FunctionBuilder* f;
  obj::Program p = scaffold(&f);
  const Label loop = f->make_label();
  f->mov_imm(0, static_cast<uint64_t>(kind));
  svc_call(*f, Sys::Open);
  f->mov(20, 0);  // fd
  f->mov_imm(19, iters);
  f->bind(loop);
  f->mov(0, 20);
  f->mov_sym(1, "ubuf");
  f->mov_imm(2, chunk);
  svc_call(*f, write ? Sys::Write : Sys::Read);
  f->sub_i(19, 19, 1);
  f->cbnz(19, loop);
  f->mov(0, 20);
  svc_call(*f, Sys::Close);
  sys_exit(*f);
  return p;
}
}  // namespace

obj::Program read_file(uint64_t iters, uint64_t chunk, FileKind kind) {
  return rw_file(iters, chunk, kind, false);
}

obj::Program write_file(uint64_t iters, uint64_t chunk, FileKind kind) {
  return rw_file(iters, chunk, kind, true);
}

obj::Program open_close(uint64_t iters) {
  FunctionBuilder* f;
  obj::Program p = scaffold(&f);
  const Label loop = f->make_label();
  f->mov_imm(19, iters);
  f->bind(loop);
  f->mov_imm(0, static_cast<uint64_t>(FileKind::Null));
  svc_call(*f, Sys::Open);
  svc_call(*f, Sys::Close);  // fd still in x0
  f->sub_i(19, 19, 1);
  f->cbnz(19, loop);
  sys_exit(*f);
  return p;
}

obj::Program stat_file(uint64_t iters) {
  FunctionBuilder* f;
  obj::Program p = scaffold(&f);
  const Label loop = f->make_label();
  f->mov_imm(0, static_cast<uint64_t>(FileKind::Ram));
  svc_call(*f, Sys::Open);
  f->mov(20, 0);
  f->mov_imm(19, iters);
  f->bind(loop);
  f->mov(0, 20);
  f->mov_sym(1, "ubuf");
  svc_call(*f, Sys::Stat);
  f->sub_i(19, 19, 1);
  f->cbnz(19, loop);
  sys_exit(*f);
  return p;
}

obj::Program yield_loop(uint64_t iters) {
  FunctionBuilder* f;
  obj::Program p = scaffold(&f);
  const Label loop = f->make_label();
  f->mov_imm(19, iters);
  f->bind(loop);
  svc_call(*f, Sys::Yield);
  f->sub_i(19, 19, 1);
  f->cbnz(19, loop);
  sys_exit(*f);
  return p;
}

obj::Program queue_work(uint64_t iters) {
  FunctionBuilder* f;
  obj::Program p = scaffold(&f);
  const Label loop = f->make_label();
  f->mov_imm(19, iters);
  f->bind(loop);
  svc_call(*f, Sys::QueueWork);
  f->sub_i(19, 19, 1);
  f->cbnz(19, loop);
  sys_exit(*f);
  return p;
}

obj::Program call_hook(uint64_t iters) {
  FunctionBuilder* f;
  obj::Program p = scaffold(&f);
  const Label loop = f->make_label();
  f->mov_imm(19, iters);
  f->bind(loop);
  svc_call(*f, Sys::CallHook);
  f->sub_i(19, 19, 1);
  f->cbnz(19, loop);
  sys_exit(*f);
  return p;
}

obj::Program load_module(uint64_t module_id) {
  FunctionBuilder* f;
  obj::Program p = scaffold(&f);
  const Label failed = f->make_label();
  const Label done = f->make_label();
  f->mov_imm(0, module_id);
  svc_call(*f, Sys::InitModule);
  f->cbnz(0, failed);
  f->mov_imm(9, 'Y');
  f->b(done);
  f->bind(failed);
  f->mov_imm(9, 'N');
  f->bind(done);
  f->mov_sym(1, "ubuf");
  f->strb(9, 1, 0);
  f->mov_imm(0, 0);  // fd 0: console
  f->mov_imm(2, 1);
  svc_call(*f, Sys::Write);
  sys_exit(*f);
  return p;
}

// ---------------------------------------------------------------------------
// Figure 4 workloads
// ---------------------------------------------------------------------------

obj::Program image_resize(uint64_t rows) {
  // Box-filter over a 256-pixel row buffer, `rows` times; one syscall per 16
  // rows. >99% of cycles are EL0 computation, like the paper's JPEG resize.
  FunctionBuilder* f;
  obj::Program p = scaffold(&f);
  p.add_bss("uimg", 256 * 8, 16);
  const Label row_loop = f->make_label();
  const Label col_loop = f->make_label();
  const Label no_sys = f->make_label();
  f->mov_imm(19, rows);
  f->bind(row_loop);
  f->mov_sym(20, "uimg");
  f->mov_imm(21, 1);  // col
  f->bind(col_loop);
  f->lsl_i(9, 21, 3);
  f->add(9, 20, 9);     // &img[col]
  f->ldr(10, 9, 0);
  f->sub_i(11, 9, 8);
  f->ldr(11, 11, 0);
  f->ldr(12, 9, 8);
  f->add(10, 10, 11);
  f->add(10, 10, 12);
  f->mov_imm(11, 3);
  f->udiv(10, 10, 11);
  f->add(10, 10, 19);   // keep values moving so rows differ
  f->str(10, 9, 0);
  f->add_i(21, 21, 1);
  f->cmp_i(21, 255);
  f->b_cond(isa::Cond::LO, col_loop);
  // occasional syscall (progress reporting)
  f->and_i(9, 19, 0xF);
  f->cbnz(9, no_sys);
  svc_call(*f, Sys::GetPid);
  f->bind(no_sys);
  f->sub_i(19, 19, 1);
  f->cbnz(19, row_loop);
  sys_exit(*f);
  return p;
}

obj::Program package_build(uint64_t units) {
  // Per "compilation unit": a compute burst plus a batch of file syscalls —
  // roughly balanced user/kernel time like a package build.
  FunctionBuilder* f;
  obj::Program p = scaffold(&f);
  const Label unit_loop = f->make_label();
  const Label compute = f->make_label();
  f->mov_imm(19, units);
  f->bind(unit_loop);
  // compute burst: 2000 multiply-accumulate steps
  f->mov_imm(9, 2000);
  f->mov_imm(10, 0x1234);
  f->bind(compute);
  f->mov_imm(11, 0x9E37);
  f->mul(10, 10, 11);
  f->lsr_i(11, 10, 13);
  f->eor(10, 10, 11);
  f->sub_i(9, 9, 1);
  f->cbnz(9, compute);
  // file batch: open, write, read, stat, close
  f->mov_imm(0, static_cast<uint64_t>(FileKind::Ram));
  svc_call(*f, Sys::Open);
  f->mov(20, 0);
  f->mov(0, 20);
  f->mov_sym(1, "ubuf");
  f->mov_imm(2, 128);
  svc_call(*f, Sys::Write);
  f->mov(0, 20);
  f->mov_sym(1, "ubuf");
  f->mov_imm(2, 128);
  svc_call(*f, Sys::Read);
  f->mov(0, 20);
  f->mov_sym(1, "ubuf");
  svc_call(*f, Sys::Stat);
  f->mov(0, 20);
  svc_call(*f, Sys::Close);
  f->sub_i(19, 19, 1);
  f->cbnz(19, unit_loop);
  sys_exit(*f);
  return p;
}

obj::Program download(uint64_t chunks) {
  // Tight read loop from the simulated device: almost all time is kernel
  // copy work, like saturating a network download.
  FunctionBuilder* f;
  obj::Program p = scaffold(&f);
  const Label loop = f->make_label();
  const Label sum_loop = f->make_label();
  f->mov_imm(0, static_cast<uint64_t>(FileKind::Ram));
  svc_call(*f, Sys::Open);
  f->mov(20, 0);
  f->mov_imm(19, chunks);
  f->mov_imm(22, 0);  // checksum
  f->bind(loop);
  f->mov(0, 20);
  f->mov_sym(1, "ubuf");
  f->mov_imm(2, 4096);
  svc_call(*f, Sys::Read);
  // light user-side checksum over a 64-byte sample
  f->mov_sym(9, "ubuf");
  f->mov_imm(10, 8);
  f->bind(sum_loop);
  f->ldr(11, 9, 0);
  f->add(22, 22, 11);
  f->add_i(9, 9, 8);
  f->sub_i(10, 10, 1);
  f->cbnz(10, sum_loop);
  f->sub_i(19, 19, 1);
  f->cbnz(19, loop);
  sys_exit(*f);
  return p;
}

}  // namespace camo::kernel::workloads
