#include "kernel/machine.h"

#include <algorithm>
#include <chrono>
#include <utility>

#include "compiler/instrument.h"
#include "support/error.h"
#include "support/format.h"
#include "support/rng.h"

namespace camo::kernel {

Machine::Machine(MachineConfig cfg)
    : cfg_([&] {
        // The §8 banked-keys extension involves both the core and the
        // kernel build; setting either flag enables both sides coherently.
        cfg.kernel.banked_keys |= cfg.cpu.banked_keys;
        cfg.cpu.banked_keys |= cfg.kernel.banked_keys;
        // Core count likewise spans both sides: the machine instantiates
        // `cores` CPUs and the kernel image must be built for that many
        // (swapper slots, scheduler shape). Either setting raises the other.
        const unsigned want = std::max(cfg.cores == 0 ? 1u : cfg.cores,
                                       cfg.kernel.num_cpus == 0
                                           ? 1u
                                           : cfg.kernel.num_cpus);
        cfg.cores = want;
        cfg.kernel.num_cpus = want;
        return cfg;
      }()),
      // Snapshot-cache machines are born sparse (CoW over the zero store):
      // no 64 MiB zero fill, and forks adopt the template's page store.
      pm_(cfg.phys_bytes, cfg.snapshot_cache != nullptr),
      mmu_(pm_, cfg.cpu.layout),
      hv_(pm_, mmu_),
      cpu_(mmu_, cfg.cpu),
      kb_(cfg.kernel) {
  // Secondary cores: own stage-1 Mmu wired to the hypervisor-shared kernel
  // map and stage-2 overlay, own Cpu registered as an IPI target.
  for (unsigned c = 1; c < cfg_.cores; ++c) {
    SecondaryCore sc;
    sc.mmu = std::make_unique<mem::Mmu>(pm_, cfg_.cpu.layout);
    hv_.adopt_mmu(*sc.mmu);
    sc.cpu = std::make_unique<cpu::Cpu>(*sc.mmu, cfg_.cpu);
    sc.cpu->set_cpu_id(c);
    hv_.install(*sc.cpu);
    secondary_.push_back(std::move(sc));
  }
}

cpu::Cpu& Machine::core(unsigned c) {
  if (c == 0) return cpu_;
  if (c > secondary_.size()) fail("machine: bad core index");
  return *secondary_[c - 1].cpu;
}

const cpu::Cpu& Machine::core(unsigned c) const {
  if (c == 0) return cpu_;
  if (c > secondary_.size()) fail("machine: bad core index");
  return *secondary_[c - 1].cpu;
}

uint64_t Machine::total_retired() const {
  uint64_t n = cpu_.retired();
  for (const auto& sc : secondary_) n += sc.cpu->retired();
  return n;
}

bool Machine::halted() const {
  if (secondary_.empty()) return cpu_.halted();
  bool all = true;
  for (unsigned c = 0; c < cores(); ++c) {
    const cpu::Cpu& cc = core(c);
    if (cc.halted() && cc.halt_code() != kHaltDone) return true;
    all = all && cc.halted();
  }
  return all;
}

uint64_t Machine::halt_code() const {
  for (unsigned c = 0; c < cores(); ++c) {
    const cpu::Cpu& cc = core(c);
    if (cc.halted() && cc.halt_code() != kHaltDone) return cc.halt_code();
  }
  return cpu_.halt_code();
}

int Machine::add_user_program(obj::Program prog, const std::string& entry) {
  if (boot_) fail("machine: add programs before boot()");
  // User binaries keep the stock ABI (R5): no kernel instrumentation is
  // applied; they are free to use PAuth with their own EL0 keys.
  compiler::instrument(prog, compiler::ProtectionConfig::none());
  const obj::Image img = obj::Linker::link(prog, kUserBase);

  const int space = hv_.create_user_space();
  hv_.load_image(img, hv_.user_space(space), /*user=*/true);
  hv_.map_user_rw(space, kUserStackTop - kUserStackSize, kUserStackSize);
  user_images_.push_back(img);
  user_spaces_.push_back(space);

  TaskSpec spec;
  spec.user_pc = img.symbol(entry);
  spec.user_sp = kUserStackTop;
  spec.space_id = static_cast<uint64_t>(space);
  // Per-thread EL0 keys, freshly generated like exec() does (§2.2).
  Xoshiro256 rng(cfg_.seed ^ (0x9E37ull * next_pid_));
  for (auto& half : spec.user_keys) half = rng.next();
  kb_.add_task(spec);
  return static_cast<int>(next_pid_++);
}

int Machine::register_module(const std::string& name, obj::Program prog) {
  // LKMs are built with the same compiler configuration as the kernel.
  compiler::instrument(prog, cfg_.kernel.protection);
  return hv_.register_module(name, std::move(prog));
}

void Machine::boot() {
  if (boot_) fail("machine: already booted");
  if (cfg_.snapshot_cache) {
    // Template-or-fork path: the first machine per signature boots fresh
    // under the cache lock (concurrent same-signature boots serialize into
    // one) and its snapshot seeds the cache; everyone else forks.
    bool built = false;
    const std::shared_ptr<const MachineSnapshot> snap =
        cfg_.snapshot_cache->get(boot_signature(), [&] {
          boot_fresh();
          built = true;
          return take_snapshot();
        });
    if (!built) fork(*snap);
    return;
  }
  boot_fresh();
}

void Machine::boot_fresh() {
  // Boot stack for the swapper context (becomes task 0's kernel stack).
  hv_.map_kernel_rw(kBootStackTop - kKernelStackSize, kKernelStackSize);

  core::BootConfig bcfg;
  bcfg.seed = cfg_.seed;
  bcfg.protection = cfg_.kernel.protection;
  bcfg.entry_symbol = "early_boot";
  bcfg.key_write_symbols = KernelBuilder::key_write_symbols();
  if (cfg_.image_cache) {
    // Fleet path: build + verify + sign the kernel once per configuration;
    // every later machine with the same key installs the shared image.
    const std::shared_ptr<const core::PreparedKernel> pk =
        cfg_.image_cache->get(
            ImageCache::key_for(cfg_.kernel, cfg_.seed, kb_.tasks()), [&] {
              imgcache_built_ = true;
              return core::Bootloader::prepare(kb_.build(), bcfg,
                                               kKernelBase);
            });
    boot_ = std::make_shared<const core::BootResult>(
        core::Bootloader::install(*pk, hv_, cpu_, kBootStackTop));
  } else {
    boot_ = std::make_shared<const core::BootResult>(core::Bootloader::boot(
        kb_.build(), bcfg, hv_, cpu_, kKernelBase, kBootStackTop));
  }

  // Attach before any guest instruction executes so the collector sees the
  // whole run (the bootloader only stages memory and registers; all guest
  // cycles flow through Cpu::step()).
  if (cfg_.obs.enabled) attach_observability();

  // §8 extension: the "hypervisor" provisions the kernel key bank directly —
  // the keys never exist in EL1-accessible state.
  if (cfg_.cpu.banked_keys) {
    cpu_.set_kernel_bank_key(cpu::PacKey::IA, boot_->keys.ia);
    cpu_.set_kernel_bank_key(cpu::PacKey::IB, boot_->keys.ib);
    cpu_.set_kernel_bank_key(cpu::PacKey::DA, boot_->keys.da);
    cpu_.set_kernel_bank_key(cpu::PacKey::DB, boot_->keys.db);
    cpu_.set_kernel_bank_key(cpu::PacKey::GA, boot_->keys.ga);
  }

  if (cfg_.kernel.preempt) cpu_.set_timer_period(cfg_.preempt_timeslice);

  // Secondary bring-up: host-side "PSCI firmware" mirroring what core 0 does
  // for itself in early_boot plus what Bootloader::install staged — PAuth
  // enable bits, vectors, kernel keys (or the per-core bank), a private boot
  // stack, TPIDR_EL1 at the core's swapper slot, and the pc parked at
  // secondary_idle (which spins until core 0 raises smp_online).
  if (!secondary_.empty()) {
    const obj::Image& img = boot_->kernel_image;
    const uint64_t task_array = img.symbol(kSymTaskArray);
    const bool protected_build =
        cfg_.kernel.protection.backward != compiler::BackwardScheme::None ||
        cfg_.kernel.protection.forward_cfi || cfg_.kernel.protection.dfi;
    for (unsigned c = 1; c < cores(); ++c) {
      cpu::Cpu& cc = core(c);
      const uint64_t stack_top = kBootStackTop - c * kKernelStackSize;
      hv_.map_kernel_rw(stack_top - kKernelStackSize, kKernelStackSize);
      cc.pstate.el = mem::El::El1;
      cc.pstate.irq_masked = true;
      cc.set_sysreg(isa::SysReg::SCTLR_EL1,
                    isa::kSctlrEnIA | isa::kSctlrEnIB | isa::kSctlrEnDA |
                        isa::kSctlrEnDB);
      cc.set_sysreg(isa::SysReg::VBAR_EL1, img.symbol("vectors"));
      cc.set_sp_el(mem::El::El1, stack_top);
      // Swapper slot for core c sits just past the user tasks.
      cc.set_sysreg(isa::SysReg::TPIDR_EL1,
                    task_array + (kb_.task_count() + c) * kTaskSize);
      cc.pc = img.symbol(kSymSecondaryIdle);
      if (cfg_.cpu.banked_keys) {
        cc.set_kernel_bank_key(cpu::PacKey::IA, boot_->keys.ia);
        cc.set_kernel_bank_key(cpu::PacKey::IB, boot_->keys.ib);
        cc.set_kernel_bank_key(cpu::PacKey::DA, boot_->keys.da);
        cc.set_kernel_bank_key(cpu::PacKey::DB, boot_->keys.db);
        cc.set_kernel_bank_key(cpu::PacKey::GA, boot_->keys.ga);
      } else if (protected_build) {
        // Same halves the XOM key setter writes on core 0 (Lo=k0, Hi=w0).
        const auto install = [&cc](isa::SysReg lo, isa::SysReg hi,
                                   const qarma::Key128& k) {
          cc.set_sysreg(lo, k.k0);
          cc.set_sysreg(hi, k.w0);
        };
        install(isa::SysReg::APIAKeyLo, isa::SysReg::APIAKeyHi,
                boot_->keys.ia);
        install(isa::SysReg::APIBKeyLo, isa::SysReg::APIBKeyHi,
                boot_->keys.ib);
        install(isa::SysReg::APDAKeyLo, isa::SysReg::APDAKeyHi,
                boot_->keys.da);
        install(isa::SysReg::APDBKeyLo, isa::SysReg::APDBKeyHi,
                boot_->keys.db);
        install(isa::SysReg::APGAKeyLo, isa::SysReg::APGAKeyHi,
                boot_->keys.ga);
      }
      if (cfg_.kernel.preempt) cc.set_timer_period(cfg_.preempt_timeslice);
    }
  }
}

std::string Machine::boot_signature() const {
  std::string key = ImageCache::key_for(cfg_.kernel, cfg_.seed, kb_.tasks());
  const cpu::Cpu::Config& c = cfg_.cpu;
  key += strformat(
      " phys=%llx slice=%llu va=%u tbi=%u%u cpu=%u%u%u%u%u%u",
      static_cast<unsigned long long>(cfg_.phys_bytes),
      static_cast<unsigned long long>(cfg_.preempt_timeslice),
      c.layout.va_bits, c.layout.tbi_user ? 1u : 0u,
      c.layout.tbi_kernel ? 1u : 0u, c.has_pauth ? 1u : 0u,
      c.fpac ? 1u : 0u, c.enable_cycle_model ? 1u : 0u,
      c.fast_path ? 1u : 0u, c.superblocks ? 1u : 0u, c.traces ? 1u : 0u);
  const obs::Options& o = cfg_.obs;
  key += strformat(" obs=%u%u%u%u tc=%zu ac=%zu fc=%zu",
                   o.enabled ? 1u : 0u, o.profile ? 1u : 0u,
                   o.callgraph ? 1u : 0u, o.coverage ? 1u : 0u,
                   o.trace_capacity, o.audit_capacity, o.flight_capacity);
  // The task table covers entry/keys but not the program text: hash the
  // user image bytes so two different binaries at the same entry VA cannot
  // share a snapshot.
  uint64_t h = 1469598103934665603ull;  // FNV-1a offset basis
  const auto mix = [&h](const uint8_t* p, size_t n) {
    for (size_t i = 0; i < n; ++i) {
      h ^= p[i];
      h *= 1099511628211ull;
    }
  };
  for (const obj::Image& img : user_images_)
    for (const auto& seg : img.segments) {
      const uint64_t head[2] = {seg.va, seg.bytes.size()};
      mix(reinterpret_cast<const uint8_t*>(head), sizeof head);
      mix(seg.bytes.data(), seg.bytes.size());
    }
  key += strformat(" uimg=%llx", static_cast<unsigned long long>(h));
  return key;
}

MachineSnapshot Machine::take_snapshot() {
  if (!boot_) fail("machine: snapshot before boot()");
  MachineSnapshot s;
  s.pages = pm_.snapshot();
  for (unsigned c = 0; c < cores(); ++c)
    s.cores.push_back(core(c).core_state());
  s.hv = hv_.save_state();
  for (unsigned c = 0; c < cores(); ++c) {
    const mem::Mmu& mm = c == 0 ? mmu_ : *secondary_[c - 1].mmu;
    const mem::Stage1Map* um = mm.user_map();
    int id = -1;
    if (um != nullptr)
      for (int space : user_spaces_)
        if (&hv_.user_space(space) == um) {
          id = space;
          break;
        }
    s.user_map.push_back(id);
  }
  s.last_core = last_core_;
  s.boot = boot_;
  if (stats_) {
    s.boot_trace = stats_->ring().snapshot();
    s.boot_audit = stats_->audit_log().snapshot();
  }
  return s;
}

void Machine::fork(const MachineSnapshot& snap) {
  if (boot_) fail("machine: fork only a machine that has not booted");
  if (snap.cores.size() != cores())
    fail("machine: fork core-count mismatch");
  if (!snap.boot) fail("machine: fork from an empty snapshot");
  pm_.adopt(snap.pages);
  hv_.restore_state(snap.hv);
  boot_ = snap.boot;
  for (unsigned c = 0; c < cores(); ++c) {
    cpu::Cpu& cc = core(c);
    // On a fresh boot Bootloader::install wires the primary's HVC handler
    // and MSR filter; the fork path never runs it, so wire every core here
    // (idempotent for secondaries, which the constructor installed).
    hv_.install(cc);
    cc.restore_core_state(snap.cores[c]);
    mem::Mmu& mm = c == 0 ? mmu_ : *secondary_[c - 1].mmu;
    mm.set_kernel_map(&hv_.kernel_map());
    mm.set_stage2(&hv_.stage2());
    const int space = snap.user_map[c];
    mm.set_user_map(space >= 0 ? &hv_.user_space(space) : nullptr);
  }
  last_core_ = snap.last_core;
  if (cfg_.obs.enabled) {
    attach_observability();
    // Replay the template's boot-era events through the collector so every
    // derived stream — ring bytes, audit log (restamped with this machine's
    // fleet id on append), histograms — matches a fresh boot exactly.
    for (const obs::TraceEvent& e : snap.boot_trace) stats_->replay(e);
    for (const obs::AuditEvent& e : snap.boot_audit) stats_->audit(e);
  }
  forked_ = true;
}

void Machine::attach_observability() {
  stats_ = std::make_unique<obs::Collector>(cfg_.obs);
  // Every core feeds the one per-machine collector; obs sinks never cost
  // simulated cycles, and the interleaver's set_active_cpu tags retirements
  // with the emitting core for the per-CPU counters.
  for (unsigned c = 0; c < cores(); ++c) {
    cpu::Cpu& cc = core(c);
    cc.set_trace_sink(stats_.get());
    cc.set_cycle_attributor(stats_.get());
    if (cfg_.obs.callgraph) cc.set_cf_sink(stats_.get());
    cc.set_audit_sink(stats_.get());
    if (cfg_.obs.coverage) cc.set_coverage(&stats_->coverage());
  }
  if (cores() > 1) stats_->enable_percpu(cores());
  hv_.set_trace_sink(stats_.get());
  // Security audit stream (DESIGN.md §3f): CPU key/PAC/EL events and
  // hypervisor denials land in the collector's AuditLog, stamped with this
  // machine's fleet identity so merged logs stay per-machine attributable.
  stats_->audit_log().set_machine_id(cfg_.machine_id);
  hv_.set_audit_sink(stats_.get());
  // Flight-recorder state provider: fills the machine-state snapshot at
  // capture time. Everything read there is guest-deterministic.
  stats_->flight().set_state_provider(
      [this](obs::FlightSnapshot& s) { fill_snapshot(s); });

  // Execution coverage (DESIGN.md §3g): annotate the PA-keyed map with
  // kernel functions + protected-table rows so report tooling can list
  // never-executed rows (the per-core attach happened above).
  if (cfg_.obs.coverage) annotate_coverage_regions();

  if (cfg_.obs.profile || cfg_.obs.callgraph) {
    const auto add_region = [&](const std::string& name, uint64_t start,
                                uint64_t end) {
      if (cfg_.obs.profile) stats_->profiler().add_region(name, start, end);
      if (cfg_.obs.callgraph)
        stats_->callgraph().add_region(name, start, end);
    };
    const obj::Image& img = boot_->kernel_image;
    for (const auto& [name, size] : img.function_sizes) {
      const uint64_t va = img.symbol(name);
      add_region(name, va, va + size);
    }
    // User programs all link at kUserBase in separate address spaces, so
    // their texts overlap in VA; profile them as one aggregate region.
    uint64_t user_end = 0;
    for (const auto& u : user_images_)
      if (u.end_va() > user_end) user_end = u.end_va();
    if (user_end > kUserBase) add_region("[user]", kUserBase, user_end);
  }

  if (boot_->kernel_image.has_symbol(kSymCpuSwitchTo)) {
    obs::Collector* c = stats_.get();
    const uint64_t va = boot_->kernel_image.symbol(kSymCpuSwitchTo);
    for (unsigned i = 0; i < cores(); ++i) {
      core(i).add_breakpoint(va, [c](cpu::Cpu& cc) {
        obs::TraceEvent e;
        e.kind = obs::EventKind::ContextSwitch;
        e.cycles = cc.cycles();
        e.pc = cc.pc;
        e.a = cc.x(0);  // prev task struct
        e.b = cc.x(1);  // next task struct
        e.el = static_cast<uint8_t>(cc.pstate.el);
        c->emit(e);
      });
    }
  }
}

void Machine::fill_snapshot(obs::FlightSnapshot& s) const {
  using isa::SysReg;
  // Snapshot the core the interleaver ran last — the one whose retirement
  // (or violation) prompted the capture. Single-core machines always read
  // core 0, exactly the pre-SMP behaviour.
  const cpu::Cpu& cc = core(last_core_);
  const mem::Mmu& mm =
      last_core_ == 0 ? mmu_ : *secondary_[last_core_ - 1].mmu;
  for (unsigned i = 0; i < 31; ++i) s.x[i] = cc.x(i);
  s.sp_el0 = cc.sp_el(mem::El::El0);
  s.sp_el1 = cc.sp_el(mem::El::El1);
  s.pc = cc.pc;
  s.el = static_cast<uint8_t>(cc.pstate.el);
  s.banked_keys = cc.config().banked_keys;
  s.elr_el1 = cc.sysreg(SysReg::ELR_EL1);
  s.spsr_el1 = cc.sysreg(SysReg::SPSR_EL1);
  s.esr_el1 = cc.sysreg(SysReg::ESR_EL1);
  s.far_el1 = cc.sysreg(SysReg::FAR_EL1);
  s.vbar_el1 = cc.sysreg(SysReg::VBAR_EL1);
  s.sctlr_el1 = cc.sysreg(SysReg::SCTLR_EL1);
  s.pending_esr = s.esr_el1;  // last syndrome delivered to EL1
  for (unsigned k = 0; k < 5; ++k) {
    const auto key = static_cast<cpu::PacKey>(k);
    s.keys[k].lo = cc.sysreg(static_cast<SysReg>(k * 2));
    s.keys[k].hi = cc.sysreg(static_cast<SysReg>(k * 2 + 1));
    s.keys[k].prov = cc.sysreg_key_provenance(key);
    const qarma::Key128& b = cc.kernel_bank_key(key);
    s.bank[k].lo = b.k0;
    s.bank[k].hi = b.w0;
    s.bank[k].prov = cc.bank_key_provenance(key);
  }
  const mem::Mmu::FetchEpoch ep = mm.fetch_epoch(cc.pc);
  // Map uids are process-global host identity (ABA bookkeeping), not
  // guest state: only the deterministic generations go into the bundle.
  s.s1_gen = ep.s1_gen;
  s.s2_gen = ep.s2_gen;
  s.cpu = static_cast<uint8_t>(last_core_);
}

void Machine::annotate_coverage_regions() {
  const obj::Image& img = boot_->kernel_image;
  obs::CoverageMap& cov = stats_->coverage();
  // Host-level fetch translation of a kernel text/rodata VA.
  const auto pa_of = [&](uint64_t va, uint64_t* pa) {
    const auto t = mmu_.translate(va, mem::Access::Fetch, mem::El::El2);
    if (t.fault != mem::FaultKind::None) return false;
    *pa = t.pa;
    return true;
  };
  // One region per physically-contiguous chunk of [va, va+size); the map is
  // PA-keyed, so a function split across non-adjacent frames yields several
  // regions under the same label.
  const auto add_fn = [&](const std::string& label, uint64_t va, uint64_t size,
                          const std::string& table, int row) {
    const uint64_t end = va + size;
    while (va < end) {
      uint64_t pa = 0;
      if (!pa_of(va, &pa)) return;
      uint64_t len = std::min<uint64_t>(end - va, 0x1000 - (va & 0xFFF));
      while (va + len < end) {
        uint64_t pn = 0;
        if (!pa_of(va + len, &pn) || pn != pa + len) break;
        len += std::min<uint64_t>(end - (va + len), 0x1000);
      }
      cov.add_region({label, pa, len, table, row});
      va += len;
    }
  };

  // Kernel functions, in name order (deterministic region list regardless
  // of the symbol table's hash order).
  std::vector<std::pair<std::string, uint64_t>> fns(img.function_sizes.begin(),
                                                    img.function_sizes.end());
  std::sort(fns.begin(), fns.end());
  for (const auto& [name, size] : fns) add_fn(name, img.symbol(name), size, "", -1);

  // Protected-table rows: resolve each (unsigned .rodata, §4.4) function
  // pointer back to its owning function so `camo-cov report` can list rows
  // an attack or workload never reached.
  const auto owner_of =
      [&](uint64_t ptr) -> const std::pair<std::string, uint64_t>* {
    for (const auto& f : fns) {
      const uint64_t fva = img.symbol(f.first);
      if (ptr >= fva && ptr < fva + f.second) return &f;
    }
    return nullptr;
  };
  const auto annotate_table = [&](const std::string& table, size_t rows) {
    if (!img.has_symbol(table)) return;
    const uint64_t base = img.symbol(table);
    for (size_t i = 0; i < rows; ++i) {
      const uint64_t ptr = read_u64(base + 8 * i);
      const auto* f = owner_of(ptr);
      if (f == nullptr) continue;
      add_fn(strformat("%s[%zu]:%s", table.c_str(), i, f->first.c_str()),
             img.symbol(f->first), f->second, table, static_cast<int>(i));
    }
  };
  annotate_table("syscall_table", static_cast<size_t>(Sys::kCount));
  annotate_table("hook_registry", 2);
  for (const char* fops : {"null_fops", "ram_fops", "con_fops"})
    annotate_table(fops, 2);
}

bool Machine::run(uint64_t max_steps) {
  const auto t0 = std::chrono::steady_clock::now();
  if (secondary_.empty()) {
    cpu_.run(max_steps);
  } else {
    // Deterministic round-robin quantum interleaver: core order, quantum
    // size and the step budget are all part of the simulated contract, so
    // the interleaving — and therefore every guest-visible outcome — is a
    // pure function of (config, cores), bit-identical across hosts, load
    // and fleet --jobs values. One instruction is never split, which is
    // what makes the guest's SWP runqueue lock atomic.
    uint64_t remaining = max_steps;
    while (remaining > 0) {
      bool progress = false;
      bool abnormal = false;
      for (unsigned c = 0; c < cores() && remaining > 0; ++c) {
        cpu::Cpu& cc = core(c);
        if (cc.halted()) {
          // A panic on any core stops the whole machine mid-round.
          if (cc.halt_code() != kHaltDone) abnormal = true;
          if (abnormal) break;
          continue;
        }
        last_core_ = c;
        if (stats_) stats_->set_active_cpu(c);
        const uint64_t want = std::min<uint64_t>(cfg_.smp_quantum, remaining);
        const uint64_t ret = cc.run(want);
        if (ret > 0) progress = true;
        // Budget by retirements, but charge a full quantum for a turn that
        // retired nothing (pure IRQ delivery) so the loop always advances.
        remaining -= std::min(remaining, ret > 0 ? ret : want);
        if (cc.halted() && cc.halt_code() != kHaltDone) {
          abnormal = true;
          break;
        }
      }
      if (abnormal || !progress) break;
    }
  }
  host_seconds_ +=
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();

  if (stats_) {
    // Fast-path cache statistics are host-side and accumulate inside the
    // CPUs/MMUs; publish them as registry counters by delta so the registry
    // stays monotonic across multiple run() calls. Multi-core machines sum
    // across cores — at cores=1 the sums equal the old single-core values.
    obs::Registry& reg = stats_->metrics();
    const auto sync = [&reg](const char* name, uint64_t total) {
      obs::Counter& c = reg.counter(name);
      if (total > c.value()) c.inc(total - c.value());
    };
    uint64_t ic_hit = 0, ic_miss = 0, ic_re = 0;
    uint64_t tlb_hit = 0, tlb_miss = 0, tlb_flush = 0;
    uint64_t pac_hit = 0, pac_miss = 0;
    uint64_t sb_blocks = 0, sb_hits = 0, sb_inval = 0, sb_chain = 0;
    uint64_t tr_formed = 0, tr_hits = 0, tr_gexit = 0, tr_inval = 0,
             tr_demote = 0;
    const auto add_core = [&](cpu::Cpu& cc, const mem::Mmu& mm) {
      const auto& fp = cc.fast_path_stats();
      ic_hit += fp.icache_hits;
      ic_miss += fp.icache_misses;
      ic_re += fp.icache_redecodes;
      const auto& tlb = mm.tlb_stats();
      tlb_hit += tlb.hits;
      tlb_miss += tlb.misses;
      tlb_flush += tlb.flushes;
      const auto& pac = cc.pauth().pac_cache_stats();
      pac_hit += pac.hits;
      pac_miss += pac.misses;
      const auto& sb = cc.superblock_stats();
      sb_blocks += sb.blocks;
      sb_hits += sb.hits;
      sb_inval += sb.invalidations;
      sb_chain += sb.chain_hits;
      tr_formed += sb.traces_formed;
      tr_hits += sb.trace_hits;
      tr_gexit += sb.trace_guard_exits;
      tr_inval += sb.trace_invalidations;
      tr_demote += sb.trace_demotions;
    };
    add_core(cpu_, mmu_);
    for (const auto& sc : secondary_) add_core(*sc.cpu, *sc.mmu);
    sync("fastpath.icache.hit", ic_hit);
    sync("fastpath.icache.miss", ic_miss);
    sync("fastpath.icache.redecode", ic_re);
    sync("fastpath.tlb.hit", tlb_hit);
    sync("fastpath.tlb.miss", tlb_miss);
    sync("fastpath.tlb.flush", tlb_flush);
    sync("fastpath.pac.hit", pac_hit);
    sync("fastpath.pac.miss", pac_miss);
    sync("fastpath.sb.blocks", sb_blocks);
    sync("fastpath.sb.hits", sb_hits);
    sync("fastpath.sb.invalidations", sb_inval);
    sync("fastpath.sb.chain_hits", sb_chain);
    sync("fastpath.trace.formed", tr_formed);
    sync("fastpath.trace.hits", tr_hits);
    sync("fastpath.trace.guard_exits", tr_gexit);
    sync("fastpath.trace.invalidations", tr_inval);
    sync("fastpath.trace.demotions", tr_demote);
    // Image-cache reuse telemetry, cached boots only (uncached machines
    // keep their exact registry shape). Each machine either built the
    // shared prepared kernel (miss) or installed an earlier machine's
    // (hit); a forked machine did neither — its template is the machine
    // that took the miss. Fleet merges sum the per-machine counters, so
    // the totals equal ImageCache::stats() across any obs-enabled sweep.
    if (cfg_.image_cache && !forked_) {
      sync("imgcache.hits", imgcache_built_ ? 0 : 1);
      sync("imgcache.misses", imgcache_built_ ? 1 : 0);
    }
    // Snapshot/fork telemetry, CoW machines only — snapshot-off registries
    // keep their exact shape. Cumulative counts use the same delta sync;
    // the shared-page census is a gauge (it shrinks as pages privatize).
    if (pm_.cow()) {
      sync("snap.forks", forked_ ? 1 : 0);
      sync("snap.cow_pages", pm_.cow_pages());
      reg.gauge("snap.shared_pages")
          .set(static_cast<double>(pm_.shared_pages()));
      if (halted() && !snap_hist_recorded_) {
        reg.histogram("hist.snap.cow_pages").record(pm_.cow_pages());
        snap_hist_recorded_ = true;
      }
    }
    // Both the aggregate name (single-machine consumers, this registry's
    // own view) and the machine-id-namespaced name: fleet merges combine
    // many machines' registries in one process, where a shared gauge name
    // would collide last-writer-wins (the merge then recomputes the
    // aggregate from summed instret/host-seconds).
    reg.gauge("host.throughput").set(host_throughput());
    reg.gauge(strformat("host.throughput.m%u", cfg_.machine_id))
        .set(host_throughput());
    // Per-core gauges, multi-core machines only (single-core registries
    // keep their exact pre-SMP shape): host-side informational readings.
    if (!secondary_.empty()) {
      for (unsigned c = 0; c < cores(); ++c) {
        const double tp =
            host_seconds_ > 0
                ? static_cast<double>(core(c).retired()) / host_seconds_
                : 0;
        reg.gauge(strformat("host.throughput.m%u.c%u", cfg_.machine_id, c))
            .set(tp);
      }
    }
  }
  return halted();
}

uint64_t Machine::kernel_symbol(const std::string& name) const {
  if (!boot_) fail("machine: not booted");
  return boot_->kernel_image.symbol(name);
}

uint64_t Machine::read_u64(uint64_t va) const {
  const auto r = mmu_.read64(va, mem::El::El2);
  if (r.fault != mem::FaultKind::None)
    fail("machine: read_u64 fault at " + hex_short(va));
  return r.value;
}

void Machine::write_u64(uint64_t va, uint64_t value) {
  // Host-level write bypassing stage-2 (models the threat-model's kernel
  // R/W primitive against *writable* memory; attacks that must honour
  // write-protection use attacks::Attacker instead).
  const auto t = mmu_.translate(va, mem::Access::Read, mem::El::El2);
  if (!t.ok()) fail("machine: write_u64 fault at " + hex_short(va));
  pm_.write64(t.pa, value);
}

uint64_t Machine::read_global(const std::string& sym) const {
  return read_u64(kernel_symbol(sym));
}

void Machine::write_global(const std::string& sym, uint64_t value) {
  write_u64(kernel_symbol(sym), value);
}

uint64_t Machine::task_struct(unsigned pid) const {
  return kernel_symbol(kSymTaskArray) + pid * kTaskSize;
}

uint64_t Machine::file_struct(unsigned fd) const {
  return kernel_symbol(kSymFileTable) + fd * kFileSize;
}

uint64_t Machine::user_symbol(unsigned pid, const std::string& name) const {
  if (pid == 0 || pid > user_images_.size()) fail("machine: bad pid");
  return user_images_[pid - 1].symbol(name);
}

uint64_t Machine::read_user_u64(unsigned pid, uint64_t va) {
  if (pid == 0 || pid > user_spaces_.size()) fail("machine: bad pid");
  const int active = hv_.active_user_space();
  hv_.switch_user_space(user_spaces_[pid - 1]);
  const uint64_t v = read_u64(va);
  if (active >= 0) hv_.switch_user_space(active);
  return v;
}

}  // namespace camo::kernel
