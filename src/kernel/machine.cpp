#include "kernel/machine.h"

#include <algorithm>
#include <chrono>
#include <utility>

#include "compiler/instrument.h"
#include "support/error.h"
#include "support/format.h"
#include "support/rng.h"

namespace camo::kernel {

Machine::Machine(MachineConfig cfg)
    : cfg_([&] {
        // The §8 banked-keys extension involves both the core and the
        // kernel build; setting either flag enables both sides coherently.
        cfg.kernel.banked_keys |= cfg.cpu.banked_keys;
        cfg.cpu.banked_keys |= cfg.kernel.banked_keys;
        return cfg;
      }()),
      pm_(cfg.phys_bytes),
      mmu_(pm_, cfg.cpu.layout),
      hv_(pm_, mmu_),
      cpu_(mmu_, cfg.cpu),
      kb_(cfg.kernel) {}

int Machine::add_user_program(obj::Program prog, const std::string& entry) {
  if (boot_) fail("machine: add programs before boot()");
  // User binaries keep the stock ABI (R5): no kernel instrumentation is
  // applied; they are free to use PAuth with their own EL0 keys.
  compiler::instrument(prog, compiler::ProtectionConfig::none());
  const obj::Image img = obj::Linker::link(prog, kUserBase);

  const int space = hv_.create_user_space();
  hv_.load_image(img, hv_.user_space(space), /*user=*/true);
  hv_.map_user_rw(space, kUserStackTop - kUserStackSize, kUserStackSize);
  user_images_.push_back(img);
  user_spaces_.push_back(space);

  TaskSpec spec;
  spec.user_pc = img.symbol(entry);
  spec.user_sp = kUserStackTop;
  spec.space_id = static_cast<uint64_t>(space);
  // Per-thread EL0 keys, freshly generated like exec() does (§2.2).
  Xoshiro256 rng(cfg_.seed ^ (0x9E37ull * next_pid_));
  for (auto& half : spec.user_keys) half = rng.next();
  kb_.add_task(spec);
  return static_cast<int>(next_pid_++);
}

int Machine::register_module(const std::string& name, obj::Program prog) {
  // LKMs are built with the same compiler configuration as the kernel.
  compiler::instrument(prog, cfg_.kernel.protection);
  return hv_.register_module(name, std::move(prog));
}

void Machine::boot() {
  if (boot_) fail("machine: already booted");
  // Boot stack for the swapper context (becomes task 0's kernel stack).
  hv_.map_kernel_rw(kBootStackTop - kKernelStackSize, kKernelStackSize);

  core::BootConfig bcfg;
  bcfg.seed = cfg_.seed;
  bcfg.protection = cfg_.kernel.protection;
  bcfg.entry_symbol = "early_boot";
  bcfg.key_write_symbols = KernelBuilder::key_write_symbols();
  if (cfg_.image_cache) {
    // Fleet path: build + verify + sign the kernel once per configuration;
    // every later machine with the same key installs the shared image.
    const std::shared_ptr<const core::PreparedKernel> pk =
        cfg_.image_cache->get(
            ImageCache::key_for(cfg_.kernel, cfg_.seed, kb_.tasks()), [&] {
              return core::Bootloader::prepare(kb_.build(), bcfg,
                                               kKernelBase);
            });
    boot_ = std::make_unique<core::BootResult>(
        core::Bootloader::install(*pk, hv_, cpu_, kBootStackTop));
  } else {
    boot_ = std::make_unique<core::BootResult>(core::Bootloader::boot(
        kb_.build(), bcfg, hv_, cpu_, kKernelBase, kBootStackTop));
  }

  // Attach before any guest instruction executes so the collector sees the
  // whole run (the bootloader only stages memory and registers; all guest
  // cycles flow through Cpu::step()).
  if (cfg_.obs.enabled) attach_observability();

  // §8 extension: the "hypervisor" provisions the kernel key bank directly —
  // the keys never exist in EL1-accessible state.
  if (cfg_.cpu.banked_keys) {
    cpu_.set_kernel_bank_key(cpu::PacKey::IA, boot_->keys.ia);
    cpu_.set_kernel_bank_key(cpu::PacKey::IB, boot_->keys.ib);
    cpu_.set_kernel_bank_key(cpu::PacKey::DA, boot_->keys.da);
    cpu_.set_kernel_bank_key(cpu::PacKey::DB, boot_->keys.db);
    cpu_.set_kernel_bank_key(cpu::PacKey::GA, boot_->keys.ga);
  }

  if (cfg_.kernel.preempt) cpu_.set_timer_period(cfg_.preempt_timeslice);
}

void Machine::attach_observability() {
  stats_ = std::make_unique<obs::Collector>(cfg_.obs);
  cpu_.set_trace_sink(stats_.get());
  cpu_.set_cycle_attributor(stats_.get());
  if (cfg_.obs.callgraph) cpu_.set_cf_sink(stats_.get());
  hv_.set_trace_sink(stats_.get());
  // Security audit stream (DESIGN.md §3f): CPU key/PAC/EL events and
  // hypervisor denials land in the collector's AuditLog, stamped with this
  // machine's fleet identity so merged logs stay per-machine attributable.
  stats_->audit_log().set_machine_id(cfg_.machine_id);
  cpu_.set_audit_sink(stats_.get());
  hv_.set_audit_sink(stats_.get());
  // Flight-recorder state provider: fills the machine-state snapshot at
  // capture time. Everything read there is guest-deterministic.
  stats_->flight().set_state_provider(
      [this](obs::FlightSnapshot& s) { fill_snapshot(s); });

  // Execution coverage (DESIGN.md §3g): attach the PA-keyed map and
  // annotate it with kernel functions + protected-table rows so report
  // tooling can list never-executed rows.
  if (cfg_.obs.coverage) {
    cpu_.set_coverage(&stats_->coverage());
    annotate_coverage_regions();
  }

  if (cfg_.obs.profile || cfg_.obs.callgraph) {
    const auto add_region = [&](const std::string& name, uint64_t start,
                                uint64_t end) {
      if (cfg_.obs.profile) stats_->profiler().add_region(name, start, end);
      if (cfg_.obs.callgraph)
        stats_->callgraph().add_region(name, start, end);
    };
    const obj::Image& img = boot_->kernel_image;
    for (const auto& [name, size] : img.function_sizes) {
      const uint64_t va = img.symbol(name);
      add_region(name, va, va + size);
    }
    // User programs all link at kUserBase in separate address spaces, so
    // their texts overlap in VA; profile them as one aggregate region.
    uint64_t user_end = 0;
    for (const auto& u : user_images_)
      if (u.end_va() > user_end) user_end = u.end_va();
    if (user_end > kUserBase) add_region("[user]", kUserBase, user_end);
  }

  if (boot_->kernel_image.has_symbol(kSymCpuSwitchTo)) {
    obs::Collector* c = stats_.get();
    cpu_.add_breakpoint(
        boot_->kernel_image.symbol(kSymCpuSwitchTo), [c](cpu::Cpu& cc) {
          obs::TraceEvent e;
          e.kind = obs::EventKind::ContextSwitch;
          e.cycles = cc.cycles();
          e.pc = cc.pc;
          e.a = cc.x(0);  // prev task struct
          e.b = cc.x(1);  // next task struct
          e.el = static_cast<uint8_t>(cc.pstate.el);
          c->emit(e);
        });
  }
}

void Machine::fill_snapshot(obs::FlightSnapshot& s) const {
  using isa::SysReg;
  for (unsigned i = 0; i < 31; ++i) s.x[i] = cpu_.x(i);
  s.sp_el0 = cpu_.sp_el(mem::El::El0);
  s.sp_el1 = cpu_.sp_el(mem::El::El1);
  s.pc = cpu_.pc;
  s.el = static_cast<uint8_t>(cpu_.pstate.el);
  s.banked_keys = cpu_.config().banked_keys;
  s.elr_el1 = cpu_.sysreg(SysReg::ELR_EL1);
  s.spsr_el1 = cpu_.sysreg(SysReg::SPSR_EL1);
  s.esr_el1 = cpu_.sysreg(SysReg::ESR_EL1);
  s.far_el1 = cpu_.sysreg(SysReg::FAR_EL1);
  s.vbar_el1 = cpu_.sysreg(SysReg::VBAR_EL1);
  s.sctlr_el1 = cpu_.sysreg(SysReg::SCTLR_EL1);
  s.pending_esr = s.esr_el1;  // last syndrome delivered to EL1
  for (unsigned k = 0; k < 5; ++k) {
    const auto key = static_cast<cpu::PacKey>(k);
    s.keys[k].lo = cpu_.sysreg(static_cast<SysReg>(k * 2));
    s.keys[k].hi = cpu_.sysreg(static_cast<SysReg>(k * 2 + 1));
    s.keys[k].prov = cpu_.sysreg_key_provenance(key);
    const qarma::Key128& b = cpu_.kernel_bank_key(key);
    s.bank[k].lo = b.k0;
    s.bank[k].hi = b.w0;
    s.bank[k].prov = cpu_.bank_key_provenance(key);
  }
  const mem::Mmu::FetchEpoch ep = mmu_.fetch_epoch(cpu_.pc);
  // Map uids are process-global host identity (ABA bookkeeping), not
  // guest state: only the deterministic generations go into the bundle.
  s.s1_gen = ep.s1_gen;
  s.s2_gen = ep.s2_gen;
}

void Machine::annotate_coverage_regions() {
  const obj::Image& img = boot_->kernel_image;
  obs::CoverageMap& cov = stats_->coverage();
  // Host-level fetch translation of a kernel text/rodata VA.
  const auto pa_of = [&](uint64_t va, uint64_t* pa) {
    const auto t = mmu_.translate(va, mem::Access::Fetch, mem::El::El2);
    if (t.fault != mem::FaultKind::None) return false;
    *pa = t.pa;
    return true;
  };
  // One region per physically-contiguous chunk of [va, va+size); the map is
  // PA-keyed, so a function split across non-adjacent frames yields several
  // regions under the same label.
  const auto add_fn = [&](const std::string& label, uint64_t va, uint64_t size,
                          const std::string& table, int row) {
    const uint64_t end = va + size;
    while (va < end) {
      uint64_t pa = 0;
      if (!pa_of(va, &pa)) return;
      uint64_t len = std::min<uint64_t>(end - va, 0x1000 - (va & 0xFFF));
      while (va + len < end) {
        uint64_t pn = 0;
        if (!pa_of(va + len, &pn) || pn != pa + len) break;
        len += std::min<uint64_t>(end - (va + len), 0x1000);
      }
      cov.add_region({label, pa, len, table, row});
      va += len;
    }
  };

  // Kernel functions, in name order (deterministic region list regardless
  // of the symbol table's hash order).
  std::vector<std::pair<std::string, uint64_t>> fns(img.function_sizes.begin(),
                                                    img.function_sizes.end());
  std::sort(fns.begin(), fns.end());
  for (const auto& [name, size] : fns) add_fn(name, img.symbol(name), size, "", -1);

  // Protected-table rows: resolve each (unsigned .rodata, §4.4) function
  // pointer back to its owning function so `camo-cov report` can list rows
  // an attack or workload never reached.
  const auto owner_of =
      [&](uint64_t ptr) -> const std::pair<std::string, uint64_t>* {
    for (const auto& f : fns) {
      const uint64_t fva = img.symbol(f.first);
      if (ptr >= fva && ptr < fva + f.second) return &f;
    }
    return nullptr;
  };
  const auto annotate_table = [&](const std::string& table, size_t rows) {
    if (!img.has_symbol(table)) return;
    const uint64_t base = img.symbol(table);
    for (size_t i = 0; i < rows; ++i) {
      const uint64_t ptr = read_u64(base + 8 * i);
      const auto* f = owner_of(ptr);
      if (f == nullptr) continue;
      add_fn(strformat("%s[%zu]:%s", table.c_str(), i, f->first.c_str()),
             img.symbol(f->first), f->second, table, static_cast<int>(i));
    }
  };
  annotate_table("syscall_table", static_cast<size_t>(Sys::kCount));
  annotate_table("hook_registry", 2);
  for (const char* fops : {"null_fops", "ram_fops", "con_fops"})
    annotate_table(fops, 2);
}

bool Machine::run(uint64_t max_steps) {
  const auto t0 = std::chrono::steady_clock::now();
  cpu_.run(max_steps);
  host_seconds_ +=
      std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
          .count();

  if (stats_) {
    // Fast-path cache statistics are host-side and accumulate inside the
    // CPU/MMU; publish them as registry counters by delta so the registry
    // stays monotonic across multiple run() calls.
    obs::Registry& reg = stats_->metrics();
    const auto sync = [&reg](const char* name, uint64_t total) {
      obs::Counter& c = reg.counter(name);
      if (total > c.value()) c.inc(total - c.value());
    };
    const auto& fp = cpu_.fast_path_stats();
    sync("fastpath.icache.hit", fp.icache_hits);
    sync("fastpath.icache.miss", fp.icache_misses);
    sync("fastpath.icache.redecode", fp.icache_redecodes);
    const auto& tlb = mmu_.tlb_stats();
    sync("fastpath.tlb.hit", tlb.hits);
    sync("fastpath.tlb.miss", tlb.misses);
    sync("fastpath.tlb.flush", tlb.flushes);
    const auto& pac = cpu_.pauth().pac_cache_stats();
    sync("fastpath.pac.hit", pac.hits);
    sync("fastpath.pac.miss", pac.misses);
    const auto& sb = cpu_.superblock_stats();
    sync("fastpath.sb.blocks", sb.blocks);
    sync("fastpath.sb.hits", sb.hits);
    sync("fastpath.sb.invalidations", sb.invalidations);
    sync("fastpath.sb.chain_hits", sb.chain_hits);
    // Both the aggregate name (single-machine consumers, this registry's
    // own view) and the machine-id-namespaced name: fleet merges combine
    // many machines' registries in one process, where a shared gauge name
    // would collide last-writer-wins (the merge then recomputes the
    // aggregate from summed instret/host-seconds).
    reg.gauge("host.throughput").set(host_throughput());
    reg.gauge(strformat("host.throughput.m%u", cfg_.machine_id))
        .set(host_throughput());
  }
  return cpu_.halted();
}

uint64_t Machine::kernel_symbol(const std::string& name) const {
  if (!boot_) fail("machine: not booted");
  return boot_->kernel_image.symbol(name);
}

uint64_t Machine::read_u64(uint64_t va) const {
  const auto r = mmu_.read64(va, mem::El::El2);
  if (r.fault != mem::FaultKind::None)
    fail("machine: read_u64 fault at " + hex_short(va));
  return r.value;
}

void Machine::write_u64(uint64_t va, uint64_t value) {
  // Host-level write bypassing stage-2 (models the threat-model's kernel
  // R/W primitive against *writable* memory; attacks that must honour
  // write-protection use attacks::Attacker instead).
  const auto t = mmu_.translate(va, mem::Access::Read, mem::El::El2);
  if (!t.ok()) fail("machine: write_u64 fault at " + hex_short(va));
  pm_.write64(t.pa, value);
}

uint64_t Machine::read_global(const std::string& sym) const {
  return read_u64(kernel_symbol(sym));
}

void Machine::write_global(const std::string& sym, uint64_t value) {
  write_u64(kernel_symbol(sym), value);
}

uint64_t Machine::task_struct(unsigned pid) const {
  return kernel_symbol(kSymTaskArray) + pid * kTaskSize;
}

uint64_t Machine::file_struct(unsigned fd) const {
  return kernel_symbol(kSymFileTable) + fd * kFileSize;
}

uint64_t Machine::user_symbol(unsigned pid, const std::string& name) const {
  if (pid == 0 || pid > user_images_.size()) fail("machine: bad pid");
  return user_images_[pid - 1].symbol(name);
}

uint64_t Machine::read_user_u64(unsigned pid, uint64_t va) {
  if (pid == 0 || pid > user_spaces_.size()) fail("machine: bad pid");
  const int active = hv_.active_user_space();
  hv_.switch_user_space(user_spaces_[pid - 1]);
  const uint64_t v = read_u64(va);
  if (active >= 0) hv_.switch_user_space(active);
  return v;
}

}  // namespace camo::kernel
