// Guest kernel ABI: structure layouts, syscall numbers, halt codes and the
// 16-bit pointer type·member constants (§4.3) shared between the kernel
// generator (host) and anything that inspects guest state (benches, attacks,
// tests).
#pragma once

#include <cstdint>

namespace camo::kernel {

// ---------------------------------------------------------------------------
// Kernel virtual memory layout
// ---------------------------------------------------------------------------

inline constexpr uint64_t kKernelBase = 0xFFFF000000080000ull;
inline constexpr uint64_t kBootStackTop = 0xFFFF000000060000ull;
inline constexpr uint64_t kUserBase = 0x0000000000400000ull;

// ---------------------------------------------------------------------------
// Task structure (stride kTaskSize, array symbol "task_array")
//
// One kernel task per user thread (1:1 threading model, §2.3). The saved
// kernel SP of a scheduled-out task is PAuth-signed with the pointer
// integrity scheme (§5.2, cpu_switch_to).
// ---------------------------------------------------------------------------

inline constexpr uint64_t kTaskSize = 0x100;
inline constexpr unsigned kMaxTasks = 34;  ///< including the swapper (task 0)

namespace task {
inline constexpr uint16_t kKsp = 0x00;       ///< signed saved kernel SP
inline constexpr uint16_t kPid = 0x08;
inline constexpr uint16_t kState = 0x10;
inline constexpr uint16_t kSpace = 0x18;     ///< user address-space id
inline constexpr uint16_t kUserPc = 0x20;    ///< initial EL0 entry
inline constexpr uint16_t kUserSp = 0x28;
inline constexpr uint16_t kSavedSpEl0 = 0x30;
inline constexpr uint16_t kSyscalls = 0x38;  ///< per-task syscall counter
inline constexpr uint16_t kKstackTop = 0x40;
inline constexpr uint16_t kUserKeys = 0x48;  ///< 10 u64: IA,IB,DA,DB,GA lo/hi
// SMP-only fields (stay zero — and unread — on uniprocessor kernels):
inline constexpr uint16_t kVruntime = 0x98;  ///< cfs-lite virtual runtime
inline constexpr uint16_t kCpu = 0xA0;       ///< core the task last ran on
}  // namespace task

enum class TaskState : uint64_t {
  Free = 0,
  New = 1,       ///< never run; cpu_switch_to takes the first-run path
  Runnable = 2,
  Current = 3,
  Dead = 4,
};

/// Swapper "address space" sentinel (never matches a real space id).
inline constexpr uint64_t kSwapperSpace = 0xFFFF;

// ---------------------------------------------------------------------------
// Kernel stacks: 16 KiB per task (§4.2), 4 KiB aligned. Slots are 64 KiB
// apart so the stack tops of different tasks coincide modulo 2^16 — the
// layout that makes the PARTS modifier replayable across threads (§7) and
// that Camouflage's 32-bit SP window resists.
// ---------------------------------------------------------------------------

inline constexpr uint64_t kKernelStackSize = 0x4000;
inline constexpr uint64_t kKernelStackStride = 0x10000;

// ---------------------------------------------------------------------------
// struct file (stride kFileSize, array "file_table", kMaxFiles entries)
// ---------------------------------------------------------------------------

inline constexpr uint64_t kFileSize = 0x20;
inline constexpr unsigned kMaxFiles = 16;

namespace file {
inline constexpr uint16_t kFops = 0x00;  ///< signed f_ops pointer (§4.5)
inline constexpr uint16_t kKind = 0x08;
inline constexpr uint16_t kPos = 0x10;
inline constexpr uint16_t kInUse = 0x18;
}  // namespace file

/// file kinds (index into the fops_by_kind table)
enum class FileKind : uint64_t { Null = 0, Ram = 1, Console = 2 };

/// struct file_operations layout (.rodata, unsigned — read-only ops tables
/// need no PAuth, §4.4)
namespace fops {
inline constexpr uint16_t kRead = 0x00;
inline constexpr uint16_t kWrite = 0x08;
}  // namespace fops

// ---------------------------------------------------------------------------
// Pointer type·member constants (the 16-bit modifier halves of §4.3).
// kTypeFileFops deliberately matches the paper's Listing 4 (0xfb45).
// ---------------------------------------------------------------------------

inline constexpr uint16_t kTypeFileFops = 0xFB45;  ///< file.f_ops (DB key)
inline constexpr uint16_t kTypeTaskSp = 0x7A5B;    ///< task.ksp (DB key)
inline constexpr uint16_t kTypeWorkFunc = 0x30C4;  ///< work_struct.func (IB)
inline constexpr uint16_t kTypeHook = 0x51D7;      ///< lone hook pointer (IB)

// ---------------------------------------------------------------------------
// Syscalls (number in x8, args x0..x2, result x0)
// ---------------------------------------------------------------------------

enum class Sys : uint16_t {
  GetPid = 0,
  Write = 1,       ///< (fd, buf, len)
  Read = 2,        ///< (fd, buf, len)
  Open = 3,        ///< (kind) -> fd
  Close = 4,       ///< (fd)
  Yield = 5,
  Exit = 6,
  Stat = 7,        ///< (fd, buf) writes 4 u64
  QueueWork = 8,   ///< run the DECLARE_WORK-initialised static work (§4.6)
  CallHook = 9,    ///< invoke the writable hook pointer (§4.4)
  InitModule = 10, ///< (module id)
  RegisterHook = 11,  ///< (registry index)
  GetJiffies = 12,
  kCount,
};

inline constexpr int64_t kEInval = -22;  ///< bad argument
inline constexpr int64_t kEPerm = -1;    ///< rejected (module verification)

// ---------------------------------------------------------------------------
// Halt codes (HLT immediate): how a run terminates.
// ---------------------------------------------------------------------------

inline constexpr uint16_t kHaltDone = 0x00D0;      ///< all user tasks exited
inline constexpr uint16_t kHaltOops = 0x00B0;      ///< unhandled kernel fault
inline constexpr uint16_t kHaltPacPanic = 0x00AC;  ///< §5.4 threshold reached
/// The attack framework's "privilege escalation reached" marker: the gadget
/// function (never legitimately called) halts with this code.
inline constexpr uint16_t kHaltPwned = 0x0666;

// ---------------------------------------------------------------------------
// Exported guest symbols the host reads via the image symbol table.
// ---------------------------------------------------------------------------

inline constexpr const char* kSymTaskArray = "task_array";
inline constexpr const char* kSymFileTable = "file_table";
inline constexpr const char* kSymPacFailCount = "pac_fail_count";
inline constexpr const char* kSymJiffies = "jiffies";
inline constexpr const char* kSymWorkCounter = "work_counter";
inline constexpr const char* kSymHookCounter = "hook_counter";
inline constexpr const char* kSymHookObj = "hook_obj";
inline constexpr const char* kSymStaticWork = "static_work";
inline constexpr const char* kSymKernelStacks = "kernel_stacks";
inline constexpr const char* kSymRamfsData = "ramfs_data";
inline constexpr const char* kSymCpuSwitchTo = "cpu_switch_to";
inline constexpr const char* kSymPwnedFlag = "pwned_flag";
inline constexpr const char* kSymGadget = "gadget_escalate";
// SMP-only symbols (present when KernelConfig::num_cpus > 1):
inline constexpr const char* kSymSchedLock = "sched_lock";
inline constexpr const char* kSymIpiMailbox = "ipi_mailbox";
inline constexpr const char* kSymIpiCount = "ipi_count";
inline constexpr const char* kSymSmpOnline = "smp_online";
inline constexpr const char* kSymSecondaryIdle = "secondary_idle";

}  // namespace camo::kernel
