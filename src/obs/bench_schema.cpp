#include "obs/bench_schema.h"

#include <fstream>
#include <iterator>

namespace camo::obs {

std::string validate_bench_json(const json::Value& doc) {
  if (!doc.is_object()) return "document is not a JSON object";
  const auto* schema = doc.get("schema");
  if (!schema || !schema->is_string() || schema->as_string() != kBenchSchemaId)
    return std::string("missing or wrong \"schema\" (want \"") +
           kBenchSchemaId + "\")";
  for (const char* key : {"bench", "title"}) {
    const auto* v = doc.get(key);
    if (!v || !v->is_string() || v->as_string().empty())
      return std::string("missing string field \"") + key + "\"";
  }
  const auto* smoke = doc.get("smoke");
  if (!smoke || !smoke->is_bool()) return "missing bool field \"smoke\"";
  const auto* seed = doc.get("seed");
  if (seed && !seed->is_number()) return "\"seed\" is not a number";
  const auto* jobs = doc.get("jobs");
  if (jobs && (!jobs->is_number() || jobs->as_number() < 1))
    return "\"jobs\" is not a number >= 1";
  const auto* cores = doc.get("cores");
  if (cores && (!cores->is_number() || cores->as_number() < 1))
    return "\"cores\" is not a number >= 1";
  const auto* sb = doc.get("sb");
  if (sb && !sb->is_bool()) return "\"sb\" is not a bool";
  const auto* trace = doc.get("trace");
  if (trace && !trace->is_bool()) return "\"trace\" is not a bool";
  const auto* snap = doc.get("snap");
  if (snap && !snap->is_bool()) return "\"snap\" is not a bool";
  const auto* series = doc.get("series");
  if (!series || !series->is_array()) return "missing \"series\" array";
  if (series->size() == 0) return "empty series";
  for (size_t i = 0; i < series->size(); ++i) {
    const auto* p = series->at(i);
    const std::string at = "series[" + std::to_string(i) + "]";
    if (!p->is_object()) return at + " is not an object";
    for (const char* key : {"config", "benchmark", "unit"}) {
      const auto* v = p->get(key);
      if (!v || !v->is_string())
        return at + " missing string field \"" + key + "\"";
    }
    const auto* value = p->get("value");
    if (!value || !value->is_number())
      return at + " missing number field \"value\"";
    const auto* rel = p->get("relative");
    if (rel && !rel->is_number()) return at + " \"relative\" is not a number";
  }
  return "";
}

std::optional<BenchDoc> parse_bench_doc(const json::Value& doc,
                                        std::string* error) {
  const std::string err = validate_bench_json(doc);
  if (!err.empty()) {
    if (error) *error = err;
    return std::nullopt;
  }
  BenchDoc out;
  out.bench = doc.get("bench")->as_string();
  out.title = doc.get("title")->as_string();
  out.smoke = doc.get("smoke")->as_bool();
  if (const auto* seed = doc.get("seed"))
    out.seed = static_cast<uint64_t>(seed->as_number());
  if (const auto* jobs = doc.get("jobs"))
    out.jobs = static_cast<unsigned>(jobs->as_number());
  if (const auto* cores = doc.get("cores"))
    out.cores = static_cast<unsigned>(cores->as_number());
  if (const auto* sb = doc.get("sb")) out.sb = sb->as_bool();
  if (const auto* trace = doc.get("trace")) out.trace = trace->as_bool();
  if (const auto* snap = doc.get("snap")) out.snap = snap->as_bool();
  const json::Value& series = *doc.get("series");
  out.series.reserve(series.size());
  for (size_t i = 0; i < series.size(); ++i) {
    const json::Value& p = *series.at(i);
    BenchSeriesPoint pt;
    pt.config = p.get("config")->as_string();
    pt.benchmark = p.get("benchmark")->as_string();
    pt.value = p.get("value")->as_number();
    pt.unit = p.get("unit")->as_string();
    if (const auto* rel = p.get("relative")) pt.relative = rel->as_number();
    out.series.push_back(std::move(pt));
  }
  return out;
}

std::optional<BenchDoc> load_bench_file(const std::string& path,
                                        std::string* error) {
  std::ifstream in(path);
  if (!in) {
    if (error) *error = "cannot open " + path;
    return std::nullopt;
  }
  const std::string text((std::istreambuf_iterator<char>(in)),
                         std::istreambuf_iterator<char>());
  const auto parsed = json::Value::parse(text);
  if (!parsed) {
    if (error) *error = path + " is not valid JSON";
    return std::nullopt;
  }
  std::string err;
  auto doc = parse_bench_doc(*parsed, &err);
  if (!doc && error) *error = path + ": " + err;
  return doc;
}

}  // namespace camo::obs
