// Cross-run divergence reports (DESIGN.md §3g).
//
// A DivergenceReport is the result of bisecting two Machine runs (see
// kernel/bisect.h) to the first retired instruction after which their
// architectural state digests differ. It is exported as a self-contained
// `camo-div/v1` JSON bundle in flight-recorder style: both sides carry a
// full FlightSnapshot and their last-K retire rings, so a human (or
// camo-cov report tooling) can see exactly where and how the two runs
// split without re-running anything.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "obs/flight.h"
#include "obs/json.h"

namespace camo::obs {

/// One side of a divergence comparison, captured at `retired` retirements.
struct DivergenceSide {
  std::string label;
  uint64_t digest = 0;
  uint64_t cycles = 0;
  uint64_t retired = 0;
  bool halted = false;
  FlightSnapshot state;
  std::vector<FlightInsn> ring;  ///< last-K retirements, oldest first
};

struct DivergenceReport {
  bool diverged = false;
  /// 1-based ordinal of the first retirement after which the digests
  /// differ; 0 means the boot states already differed.
  uint64_t first_divergent = 0;
  /// Retirement count up to which both sides were verified equal.
  uint64_t compared = 0;
  uint64_t digest_interval = 0;
  DivergenceSide a, b;
};

/// Canonical camo-div/v1 JSON bundle.
std::string div_bundle_json(const DivergenceReport& r);

/// Structural validation; returns "" when valid, else a message.
std::string validate_div_bundle(const json::Value& v);

}  // namespace camo::obs
