#include "obs/divergence.h"

#include "support/format.h"

namespace camo::obs {

namespace {

json::Value side_json(const DivergenceSide& s) {
  json::Value o = json::Value::object();
  o.set("label", json::Value(s.label));
  o.set("digest", json::Value(hex_u64(s.digest)));
  o.set("cycles", json::Value(hex_u64(s.cycles)));
  o.set("retired", json::Value(hex_u64(s.retired)));
  o.set("halted", json::Value(s.halted));
  o.set("state", flight_snapshot_json(s.state));
  json::Value ring = json::Value::array();
  for (const FlightInsn& in : s.ring) {
    json::Value e = json::Value::object();
    e.set("cycles", json::Value(hex_u64(in.cycles)));
    e.set("pc", json::Value(hex_u64(in.pc)));
    e.set("op", json::Value(static_cast<uint64_t>(in.op)));
    e.set("el", json::Value(static_cast<uint64_t>(in.el)));
    ring.push(std::move(e));
  }
  o.set("ring", std::move(ring));
  return o;
}

std::string validate_side(const json::Value* s, const char* name) {
  if (!s || !s->is_object()) return strformat("missing side %s", name);
  for (const char* f : {"label", "digest", "cycles", "retired", "state"})
    if (!s->get(f)) return strformat("side %s missing %s", name, f);
  const json::Value* halted = s->get("halted");
  if (!halted || !halted->is_bool())
    return strformat("side %s missing halted", name);
  const json::Value* ring = s->get("ring");
  if (!ring || !ring->is_array())
    return strformat("side %s missing ring", name);
  const json::Value* state = s->get("state");
  if (!state->is_object() || !state->get("x") || !state->get("pc"))
    return strformat("side %s state malformed", name);
  return "";
}

}  // namespace

std::string div_bundle_json(const DivergenceReport& r) {
  json::Value root = json::Value::object();
  root.set("schema", json::Value("camo-div/v1"));
  root.set("diverged", json::Value(r.diverged));
  root.set("first_divergent", json::Value(hex_u64(r.first_divergent)));
  root.set("compared", json::Value(hex_u64(r.compared)));
  root.set("digest_interval", json::Value(r.digest_interval));
  root.set("a", side_json(r.a));
  root.set("b", side_json(r.b));
  return root.dump(2);
}

std::string validate_div_bundle(const json::Value& v) {
  if (!v.is_object()) return "bundle is not an object";
  const json::Value* schema = v.get("schema");
  if (!schema || !schema->is_string() ||
      schema->as_string() != "camo-div/v1")
    return "schema is not camo-div/v1";
  const json::Value* diverged = v.get("diverged");
  if (!diverged || !diverged->is_bool()) return "missing diverged";
  for (const char* f : {"first_divergent", "compared", "digest_interval"})
    if (!v.get(f)) return strformat("missing %s", f);
  if (std::string err = validate_side(v.get("a"), "a"); !err.empty())
    return err;
  if (std::string err = validate_side(v.get("b"), "b"); !err.empty())
    return err;
  return "";
}

}  // namespace camo::obs
