// Collector: the per-machine observability hub.
//
// One object implements both producer interfaces (TraceSink +
// CycleAttributor) and fans everything out to the three backends:
//
//  * a TraceRing keeping the most recent events,
//  * a Registry of named counters/histograms derived from the event stream
//    and the retire feed (EL cycle residency, per-class retired ops,
//    per-key auth failures, syscall latency histogram, ...),
//  * a Profiler bucketing retired cycles by guest symbol.
//
// The Collector also *synthesizes* syscall windows: an ExcEnter with the SVC
// class opens a window (emitting SyscallEnter with the nr from x8) and the
// next ExcExit returning to EL0 closes it (emitting SyscallExit and
// recording the window length in the `syscall.cycles` histogram). Under
// context switching a window can span other tasks' execution; the histogram
// therefore measures wall-clock (guest cycle) syscall latency, which is what
// Fig. 3 reports.
#pragma once

#include <cstddef>
#include <string>

#include "obs/callgraph.h"
#include "obs/metrics.h"
#include "obs/profile.h"
#include "obs/ring.h"
#include "obs/trace.h"

namespace camo::obs {

/// Knobs carried in MachineConfig. Disabled by default: a Machine without
/// `enabled` never allocates a Collector and the CPU's sink pointers stay
/// null.
struct Options {
  bool enabled = false;
  size_t trace_capacity = 1 << 15;  ///< TraceRing capacity (events)
  bool profile = true;              ///< attach the per-symbol cycle profiler
  bool callgraph = true;  ///< attach the shadow-call-stack profiler too
};

class Collector : public TraceSink, public CycleAttributor, public CfSink {
 public:
  explicit Collector(const Options& opts = Options{});

  // Producer interfaces -----------------------------------------------------
  void emit(const TraceEvent& e) override;
  void retire(uint64_t pc, uint8_t el, uint8_t op_class,
              uint64_t cycles) override;
  void control_flow(CfKind kind, uint64_t from_pc, uint64_t to_pc,
                    uint8_t info) override;

  // Backends ----------------------------------------------------------------
  Registry& metrics() { return reg_; }
  const Registry& metrics() const { return reg_; }
  TraceRing& ring() { return ring_; }
  const TraceRing& ring() const { return ring_; }
  Profiler& profiler() { return prof_; }
  const Profiler& profiler() const { return prof_; }
  CallGraphProfiler& callgraph() { return cg_; }
  const CallGraphProfiler& callgraph() const { return cg_; }
  const Options& options() const { return opts_; }

  // Export ------------------------------------------------------------------
  /// Chrome trace_event JSON of the retained event window.
  std::string chrome_trace_json() const;
  /// Flat per-symbol cycle profile (text).
  std::string flat_profile() const { return prof_.flat_profile(); }
  /// Folded-stack call-graph profile (flamegraph.pl / speedscope input).
  std::string folded_profile() const { return cg_.folded(); }
  /// Counters + histograms as a JSON document.
  std::string metrics_json() const { return reg_.to_json(); }

 private:
  Options opts_;
  Registry reg_;
  TraceRing ring_;
  Profiler prof_;
  CallGraphProfiler cg_;

  // Syscall-window synthesis state.
  bool syscall_open_ = false;
  uint64_t syscall_enter_cycles_ = 0;
  uint16_t syscall_nr_ = 0;

  // Hot-path counter/histogram references (resolved once; Registry
  // references are stable).
  Counter* cycles_el_[3];
  Counter* insn_el_[3];
  Counter* ops_[static_cast<size_t>(OpClass::kCount)];
  Histogram* syscall_cycles_;
};

}  // namespace camo::obs
