// Collector: the per-machine observability hub.
//
// One object implements both producer interfaces (TraceSink +
// CycleAttributor) and fans everything out to the three backends:
//
//  * a TraceRing keeping the most recent events,
//  * a Registry of named counters/histograms derived from the event stream
//    and the retire feed (EL cycle residency, per-class retired ops,
//    per-key auth failures, syscall latency histogram, ...),
//  * a Profiler bucketing retired cycles by guest symbol.
//
// The Collector also *synthesizes* syscall windows: an ExcEnter with the SVC
// class opens a window (emitting SyscallEnter with the nr from x8) and the
// next ExcExit returning to EL0 closes it (emitting SyscallExit and
// recording the window length in the `syscall.cycles` histogram). Under
// context switching a window can span other tasks' execution; the histogram
// therefore measures wall-clock (guest cycle) syscall latency, which is what
// Fig. 3 reports.
#pragma once

#include <cstddef>
#include <string>
#include <unordered_map>
#include <vector>

#include "obs/audit.h"
#include "obs/callgraph.h"
#include "obs/coverage.h"
#include "obs/flight.h"
#include "obs/metrics.h"
#include "obs/profile.h"
#include "obs/ring.h"
#include "obs/trace.h"

namespace camo::obs {

/// Knobs carried in MachineConfig. Disabled by default: a Machine without
/// `enabled` never allocates a Collector and the CPU's sink pointers stay
/// null.
struct Options {
  bool enabled = false;
  size_t trace_capacity = 1 << 15;  ///< TraceRing capacity (events)
  bool profile = true;              ///< attach the per-symbol cycle profiler
  bool callgraph = true;  ///< attach the shadow-call-stack profiler too
  size_t audit_capacity = 8192;  ///< AuditLog capacity (events)
  size_t flight_capacity = 256;  ///< flight-recorder ring (instructions)
  /// Attach the PA-keyed execution coverage map (obs/coverage.h). Off by
  /// default: the per-retirement feed costs a map probe, so only coverage
  /// consumers (bench --cov, security matrix, camo-cov) pay for it.
  bool coverage = false;
};

class Collector : public TraceSink,
                  public CycleAttributor,
                  public CfSink,
                  public AuditSink {
 public:
  explicit Collector(const Options& opts = Options{});

  // Producer interfaces -----------------------------------------------------
  void emit(const TraceEvent& e) override;
  void retire(uint64_t pc, uint8_t el, uint8_t op_class,
              uint64_t cycles) override;
  void control_flow(CfKind kind, uint64_t from_pc, uint64_t to_pc,
                    uint8_t info) override;
  /// Security audit stream (DESIGN.md §3f). Besides recording into the
  /// AuditLog, the collector derives the `pauth.sign_to_auth.cycles`
  /// histogram here: each Sign remembers its signed value + cycle, the
  /// matching Auth* records the distance and retires the entry.
  void audit(const AuditEvent& e) override;
  /// Replay one event of a captured stream (Machine::fork): runs the same
  /// counter/histogram/open-window derivations as emit(), but does not
  /// synthesize the derived SyscallEnter/SyscallExit ring events — a
  /// captured ring already carries those as literal events, so emitting
  /// them again would duplicate every syscall marker in the replayed
  /// prefix. Boot-era streams have no syscalls; this matters for mid-run
  /// snapshots.
  void replay(const TraceEvent& e);

  // Backends ----------------------------------------------------------------
  Registry& metrics() { return reg_; }
  const Registry& metrics() const { return reg_; }
  TraceRing& ring() { return ring_; }
  const TraceRing& ring() const { return ring_; }
  AuditLog& audit_log() { return audit_log_; }
  const AuditLog& audit_log() const { return audit_log_; }
  FlightRecorder& flight() { return flight_; }
  const FlightRecorder& flight() const { return flight_; }
  Profiler& profiler() { return prof_; }
  const Profiler& profiler() const { return prof_; }
  /// Execution coverage map; only fed when options().coverage is set (the
  /// Machine attaches it to the CPU at boot).
  CoverageMap& coverage() { return cov_; }
  const CoverageMap& coverage() const { return cov_; }
  CallGraphProfiler& callgraph() { return cg_; }
  const CallGraphProfiler& callgraph() const { return cg_; }
  const Options& options() const { return opts_; }

  // Multi-core attribution -------------------------------------------------
  /// Create the per-core "insn.c<k>" / "cycles.c<k>" counters. Called once
  /// by multi-core Machines before boot; single-core machines never call it,
  /// so their registry shape stays exactly the pre-SMP one.
  void enable_percpu(unsigned cores);
  /// Which core subsequent retire() samples belong to. The interleaver sets
  /// this before each core's quantum; harmless no-op when enable_percpu was
  /// never called.
  void set_active_cpu(unsigned cpu) { active_cpu_ = cpu; }
  unsigned active_cpu() const { return active_cpu_; }

  // Export ------------------------------------------------------------------
  /// Chrome trace_event JSON of the retained event window.
  std::string chrome_trace_json() const;
  /// Flat per-symbol cycle profile (text).
  std::string flat_profile() const { return prof_.flat_profile(); }
  /// Folded-stack call-graph profile (flamegraph.pl / speedscope input).
  std::string folded_profile() const { return cg_.folded(); }
  /// Counters + histograms as a JSON document.
  std::string metrics_json() const { return reg_.to_json(); }

 private:
  Options opts_;
  Registry reg_;
  TraceRing ring_;
  AuditLog audit_log_;
  FlightRecorder flight_;
  Profiler prof_;
  CallGraphProfiler cg_;
  CoverageMap cov_;

  // Syscall-window synthesis state. `replaying_` is set for the duration of
  // a replay() call: derivations run, synthesized ring events are skipped.
  bool replaying_ = false;
  bool syscall_open_ = false;
  uint64_t syscall_enter_cycles_ = 0;
  uint16_t syscall_nr_ = 0;

  // Sign→auth latency matching: signed value -> sign cycle. Entries retire
  // on the matching auth; the map is capped so signs that are never
  // authenticated cannot grow it unboundedly (drops are counted).
  static constexpr size_t kMaxPendingSigns = 1 << 16;
  std::unordered_map<uint64_t, uint64_t> pending_signs_;

  // Key-switch burst detection: consecutive KeyWrite events ≤ 32 cycles
  // apart form one burst (a bank switch writes several halves back-to-back);
  // the burst span is recorded into `key.switch.cycles` when it closes. A
  // burst still open at end of run is deliberately unrecorded — that keeps
  // the histogram a pure function of the event stream.
  bool burst_open_ = false;
  uint64_t burst_first_ = 0, burst_last_ = 0;
  unsigned burst_writes_ = 0;

  // Cycle counter reconstructed from the retire feed (pre-step timestamps
  // for the flight ring).
  uint64_t retired_cycles_ = 0;

  // Hot-path counter/histogram references (resolved once; Registry
  // references are stable).
  Counter* cycles_el_[3];
  Counter* insn_el_[3];
  Counter* ops_[static_cast<size_t>(OpClass::kCount)];
  // Per-core retire attribution (empty unless enable_percpu was called).
  std::vector<Counter*> insn_cpu_;
  std::vector<Counter*> cycles_cpu_;
  unsigned active_cpu_ = 0;
  Histogram* syscall_cycles_;
  Histogram* sign_to_auth_;
  Histogram* key_switch_;
};

}  // namespace camo::obs
