#include "obs/audit.h"

namespace camo::obs {

const char* audit_kind_name(AuditKind k) {
  switch (k) {
    case AuditKind::None: return "none";
    case AuditKind::KeyInstall: return "key-install";
    case AuditKind::Sign: return "sign";
    case AuditKind::AuthOk: return "auth-ok";
    case AuditKind::AuthFail: return "auth-fail";
    case AuditKind::ElEnter: return "el-enter";
    case AuditKind::ElExit: return "el-exit";
    case AuditKind::HypDenied: return "hyp-denied";
    case AuditKind::ModuleVerify: return "module-verify";
    case AuditKind::AttackVerdict: return "attack-verdict";
    case AuditKind::kCount: break;
  }
  return "<bad-kind>";
}

const char* modifier_class_name(ModifierClass c) {
  switch (c) {
    case ModifierClass::Zero: return "zero";
    case ModifierClass::Address: return "address";
    case ModifierClass::Composite: return "composite";
  }
  return "<bad-class>";
}

std::vector<size_t> causal_chain(const std::vector<AuditEvent>& events,
                                 size_t at) {
  std::vector<size_t> chain;
  if (at >= events.size()) return chain;
  const AuditEvent& fail = events[at];
  if (fail.kind != AuditKind::AuthFail) {
    chain.push_back(at);
    return chain;
  }
  // A PAC-stripped view of the failing pointer: when the attacker corrupted
  // the PAC bits but kept the target, the low 48 bits still match the raw
  // pointer that was signed.
  const uint64_t kLow48 = (uint64_t{1} << 48) - 1;
  for (size_t i = 0; i < at; ++i) {
    const AuditEvent& e = events[i];
    if (e.machine != fail.machine) continue;
    if (e.kind == AuditKind::KeyInstall && e.prov == fail.prov &&
        fail.prov != 0) {
      chain.push_back(i);
    } else if (e.kind == AuditKind::Sign && e.key == fail.key &&
               e.prov == fail.prov) {
      const bool exact = e.ptr2 == fail.ptr;  // signed value replayed as-is
      const bool stripped =
          (e.ptr & kLow48) == (fail.ptr & kLow48);  // PAC bits corrupted
      if (exact || stripped) chain.push_back(i);
    }
  }
  chain.push_back(at);
  for (size_t i = at + 1; i < events.size(); ++i) {
    if (events[i].machine != fail.machine) continue;
    if (events[i].kind == AuditKind::AttackVerdict) chain.push_back(i);
  }
  return chain;
}

}  // namespace camo::obs
