#include "obs/digest.h"

namespace camo::obs {

uint64_t snapshot_digest(const FlightSnapshot& s, uint64_t cycles,
                         uint64_t retired) {
  StateDigest d;
  for (uint64_t r : s.x) d.add(r);
  d.add(s.sp_el0);
  d.add(s.sp_el1);
  d.add(s.pc);
  d.add(s.el);
  d.add(s.banked_keys ? 1 : 0);
  d.add(s.elr_el1);
  d.add(s.spsr_el1);
  d.add(s.esr_el1);
  d.add(s.far_el1);
  d.add(s.vbar_el1);
  d.add(s.sctlr_el1);
  for (const FlightKey& k : s.keys) {
    d.add(k.lo);
    d.add(k.hi);
    d.add(k.prov);
  }
  for (const FlightKey& k : s.bank) {
    d.add(k.lo);
    d.add(k.hi);
    d.add(k.prov);
  }
  d.add(s.s1_gen);
  d.add(s.s2_gen);
  d.add(s.pending_esr);
  d.add(cycles);
  d.add(retired);
  return d.value();
}

}  // namespace camo::obs
