#include "obs/callgraph.h"

#include <algorithm>

#include <cstddef>

#include "support/format.h"

namespace camo::obs {

void CallGraphProfiler::add_region(std::string name, uint64_t start,
                                   uint64_t end) {
  const size_t idx = index_.add(std::move(name), start, end);
  if (idx == RegionIndex::kNone) return;
  // Name ids are interned lazily so unexecuted symbols cost nothing.
  region_names_.insert(region_names_.begin() + static_cast<ptrdiff_t>(idx),
                       -1);
}

int CallGraphProfiler::intern(const std::string& name) {
  const auto it = name_ids_.find(name);
  if (it != name_ids_.end()) return it->second;
  const int id = static_cast<int>(names_.size());
  names_.push_back(name);
  name_ids_.emplace(name, id);
  return id;
}

int CallGraphProfiler::intern_region(uint64_t pc) {
  const size_t idx = index_.find(pc);
  if (idx == RegionIndex::kNone) {
    if (other_name_ < 0) other_name_ = intern("[other]");
    return other_name_;
  }
  if (region_names_[idx] < 0) region_names_[idx] = intern(index_[idx].name);
  return region_names_[idx];
}

int CallGraphProfiler::child(int node, int name, bool exc) {
  if (nodes_.empty()) nodes_.push_back(Node{});  // root
  const auto it = nodes_[node].children.find(name);
  if (it != nodes_[node].children.end()) return it->second;
  const int id = static_cast<int>(nodes_.size());
  Node n;
  n.name = name;
  n.parent = node;
  n.exc = exc;
  nodes_.push_back(std::move(n));
  nodes_[node].children.emplace(name, id);
  return id;
}

void CallGraphProfiler::control_flow(CfKind kind, uint64_t /*from_pc*/,
                                     uint64_t to_pc, uint8_t info) {
  pending_.push_back(PendingCf{kind, to_pc, info});
}

void CallGraphProfiler::apply(const PendingCf& cf) {
  switch (cf.kind) {
    case CfKind::Call: {
      if (stack_.size() >= kMaxDepth) {
        ++overflow_;
        break;
      }
      stack_.push_back(child(current(), intern_region(cf.to_pc), false));
      break;
    }
    case CfKind::Ret: {
      if (overflow_ > 0) {
        --overflow_;
        break;
      }
      // Only call frames pop on RET; an exception frame on top means the
      // shadow stack and the guest disagree (corrupted or hand-written
      // control flow) — leave it for the matching ERET.
      if (!stack_.empty() && !nodes_[stack_.back()].exc) stack_.pop_back();
      break;
    }
    case CfKind::ExcEnter: {
      if (stack_.size() >= kMaxDepth) {
        ++overflow_;
        break;
      }
      const int name =
          intern(std::string("[exc:") + exc_class_label(cf.info) + "]");
      stack_.push_back(child(current(), name, true));
      break;
    }
    case CfKind::ExcExit: {
      // Unwind through the innermost exception frame. An ERET with no
      // exception frame below it (the boot path's first drop to EL0) leaves
      // the stack alone.
      overflow_ = 0;
      const auto it =
          std::find_if(stack_.rbegin(), stack_.rend(),
                       [&](int n) { return nodes_[n].exc; });
      if (it != stack_.rend())
        stack_.resize(stack_.size() -
                      static_cast<size_t>(it - stack_.rbegin()) - 1);
      break;
    }
  }
}

void CallGraphProfiler::retire(uint64_t pc, uint8_t /*el*/,
                               uint8_t /*op_class*/, uint64_t cycles) {
  if (nodes_.empty()) nodes_.push_back(Node{});  // root
  // Attribute to the stack as it stood *before* this step's control-flow
  // events: a BL's cycles belong to the caller.
  int target;
  if (overflow_ > 0) {
    if (truncated_name_ < 0) truncated_name_ = intern("[truncated]");
    target = child(current(), truncated_name_, false);
  } else if (stack_.empty()) {
    // Nothing called this code (boot entry, or every frame returned): the
    // leaf becomes the base frame so subsequent calls nest under it.
    stack_.push_back(child(0, intern_region(pc), false));
    target = stack_.back();
  } else {
    const int leaf = intern_region(pc);
    const int cur = current();
    // Self-heal: when pc sits outside the top frame's region (tail jumps,
    // mismatched returns), attribute to an appended leaf without pushing.
    target = nodes_[cur].name == leaf ? cur : child(cur, leaf, false);
  }
  nodes_[target].cycles += cycles;
  ++nodes_[target].retires;
  total_cycles_ += cycles;
  ++total_retires_;

  for (const PendingCf& cf : pending_) apply(cf);
  pending_.clear();
}

size_t CallGraphProfiler::hot_node_count() const {
  size_t n = 0;
  for (const Node& node : nodes_)
    if (node.cycles || node.retires) ++n;
  return n;
}

void CallGraphProfiler::collect_lines(
    std::vector<std::pair<std::string, uint64_t>>& out, char sep) const {
  for (const Node& node : nodes_) {
    if (!node.cycles && !node.retires) continue;
    if (node.name < 0) continue;  // root never holds cycles, but be safe
    // Build the path root→node.
    std::vector<int> path;
    for (const Node* n = &node; n->name >= 0; n = &nodes_[n->parent])
      path.push_back(n->name);
    std::string line;
    for (auto it = path.rbegin(); it != path.rend(); ++it) {
      if (!line.empty()) line += sep;
      line += names_[static_cast<size_t>(*it)];
    }
    out.emplace_back(std::move(line), node.cycles);
  }
}

std::string CallGraphProfiler::folded(char sep) const {
  std::vector<std::pair<std::string, uint64_t>> lines;
  collect_lines(lines, sep);
  std::sort(lines.begin(), lines.end());
  std::string out;
  for (const auto& [stack, cycles] : lines)
    out += strformat("%s %llu\n", stack.c_str(),
                     static_cast<unsigned long long>(cycles));
  return out;
}

std::string CallGraphProfiler::top_stacks(size_t n) const {
  std::vector<std::pair<std::string, uint64_t>> lines;
  collect_lines(lines, ';');
  std::sort(lines.begin(), lines.end(), [](const auto& a, const auto& b) {
    return a.second != b.second ? a.second > b.second : a.first < b.first;
  });
  if (lines.size() > n) lines.resize(n);
  std::string out = strformat("%12s  %6s  %s\n", "cycles", "%", "stack");
  for (const auto& [stack, cycles] : lines) {
    const double pct = total_cycles_
                           ? 100.0 * static_cast<double>(cycles) /
                                 static_cast<double>(total_cycles_)
                           : 0.0;
    out += strformat("%12llu  %5.1f%%  %s\n",
                     static_cast<unsigned long long>(cycles), pct,
                     stack.c_str());
  }
  return out;
}

void CallGraphProfiler::clear() {
  nodes_.clear();
  stack_.clear();
  pending_.clear();
  overflow_ = 0;
  total_cycles_ = 0;
  total_retires_ = 0;
}

}  // namespace camo::obs
