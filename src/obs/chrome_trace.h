// Chrome trace_event JSON export (Perfetto / chrome://tracing loadable).
//
// Converts a chronological trace-event snapshot into the trace_event object
// format: exception windows and syscall windows become B/E duration spans on
// their own lanes, point events (auth failures, key writes, context switches,
// stage-2 faults, ...) become "i" instants. Timestamps are guest cycles
// reported as microseconds, so one trace "us" == one simulated cycle.
#pragma once

#include <string>
#include <vector>

#include "obs/trace.h"

namespace camo::obs {

/// Render `events` (chronological order, e.g. TraceRing::snapshot()) as a
/// complete Chrome trace_event JSON document. Tolerates truncated streams
/// (ring wraparound): unmatched E/exit events at depth 0 are skipped, and
/// any spans still open at the end are closed at the last timestamp.
std::string chrome_trace_json(const std::vector<TraceEvent>& events);

}  // namespace camo::obs
