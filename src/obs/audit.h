// camo::obs security audit stream (DESIGN.md §3f).
//
// The trace ring answers "what happened"; the audit log answers "why was
// this pointer accepted or rejected". It is a typed, bounded stream of every
// security-relevant event — key installs (MSR halves and EL2 bank
// provisioning), PAC sign and authentication outcomes, EL transitions,
// hypervisor denials and attack verdicts — with one extra ingredient the
// trace lacks: **key provenance**. Every live key value carries a
// monotonically increasing provenance id, assigned when the key material is
// installed; sign and auth events record the provenance of the key they
// used. An authentication failure therefore links causally back through the
// sign events made under the same key generation to the exact install that
// produced it, which is what camo-audit's causal-chain printer walks.
//
// Determinism rules (same contract as the trace ring):
//  * producers hold a null AuditSink pointer by default — emission never
//    costs simulated cycles and the guest run is bit-for-bit identical with
//    or without a sink attached;
//  * every payload is guest-deterministic (cycle counter, guest PCs,
//    pointer/modifier values, provenance counters) — no host wall clock —
//    so fleet runs merged in task-index order produce bit-identical logs
//    for any --jobs value, and a flight-recorder bundle replayed on a fresh
//    machine reproduces the stream exactly.
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

namespace camo::obs {

/// Typed audit events. Payload assignments are documented per kind.
enum class AuditKind : uint8_t {
  None = 0,
  KeyInstall,    ///< key material installed: key=PacKey, prov=new id,
                 ///< bank=1 for the EL2-managed kernel bank (§8) else 0,
                 ///< imm=sysreg (half written) when bank==0
  Sign,          ///< PAC insertion: ptr=raw pointer, ptr2=signed result,
                 ///< modifier, key, prov=provenance of the signing key
  AuthOk,        ///< AUT* accepted: ptr=input, ptr2=stripped result
  AuthFail,      ///< AUT* rejected: ptr=input, ptr2=poisoned result,
                 ///< pc=faulting instruction, lr=x30 at failure
  ElEnter,       ///< exception entry: aux=ExcClass, el=EL before entry,
                 ///< pc=preferred return, ptr=FAR
  ElExit,        ///< ERET: aux=target EL, ptr=target pc
  HypDenied,     ///< hypervisor denied an EL1 MSR write: imm=sysreg
  ModuleVerify,  ///< module load verification: ptr=module id, aux=1 when ok
  AttackVerdict, ///< attacks:: classification: aux=Outcome ordinal
  kCount,
};

const char* audit_kind_name(AuditKind k);

/// Structural classification of a PAC modifier value — enough to tell the
/// paper's modifier constructions apart without reaching into the compiler:
/// zero (Apple-style, §7), a plain canonical address (Clang's SP-only
/// scheme), or a composite mixing address and context bits (Camouflage's
/// SP ‖ function address, PARTS' SP ‖ function-id, the object modifier).
enum class ModifierClass : uint8_t { Zero = 0, Address, Composite };

const char* modifier_class_name(ModifierClass c);

/// Classify a modifier value structurally: 0 is Zero; a value whose top 16
/// bits are all-zero or all-one (a canonical VA) is Address; anything else
/// is Composite.
inline ModifierClass classify_modifier(uint64_t modifier) {
  if (modifier == 0) return ModifierClass::Zero;
  const uint64_t top = modifier >> 48;
  if (top == 0 || top == 0xFFFF) return ModifierClass::Address;
  return ModifierClass::Composite;
}

/// One audit record (fixed size). `cycles` is the CPU cycle counter at
/// emission; `machine` is stamped by the receiving log so fleet-merged
/// streams keep every machine's events distinct.
struct AuditEvent {
  uint64_t cycles = 0;
  uint64_t pc = 0;        ///< guest pc associated with the event (0 if none)
  uint64_t ptr = 0;       ///< kind-specific (see AuditKind)
  uint64_t ptr2 = 0;      ///< kind-specific
  uint64_t modifier = 0;  ///< Sign/Auth*: the PAC modifier used
  uint64_t lr = 0;        ///< AuthFail: x30 at the failing instruction
  uint64_t prov = 0;      ///< provenance id of the key involved (0 = none /
                          ///< installed outside the audited path)
  uint32_t machine = 0;   ///< fleet machine id (stamped by the log)
  AuditKind kind = AuditKind::None;
  uint8_t key = 0;      ///< PacKey ordinal for key/sign/auth events
  uint8_t el = 0;       ///< exception level at emission
  uint8_t mclass = 0;   ///< ModifierClass ordinal (Sign/Auth*)
  uint8_t bank = 0;     ///< KeyInstall: 1 = EL2 kernel bank, 0 = key register
  uint8_t aux = 0;      ///< kind-specific small payload (class, EL, outcome)
  uint8_t cpu = 0;      ///< emitting core id within the machine (0 = core 0
                        ///< and the only value single-core machines produce)
  uint16_t imm = 0;     ///< kind-specific 16-bit payload (sysreg)
};

/// Audit consumer. Producers treat a null sink as "auditing off".
class AuditSink {
 public:
  virtual ~AuditSink() = default;
  virtual void audit(const AuditEvent& e) = 0;
};

/// Fixed-capacity audit ring (the default AuditSink backend), modeled on
/// TraceRing: keeps the most recent `capacity` events, counts overwritten
/// ones in dropped(), iterates oldest→newest.
class AuditLog : public AuditSink {
 public:
  explicit AuditLog(size_t capacity = 8192)
      : capacity_(capacity == 0 ? 1 : capacity) {
    buf_.reserve(capacity_ < 4096 ? capacity_ : 4096);
  }

  void audit(const AuditEvent& e) override {
    ++total_;
    if (buf_.size() < capacity_) {
      buf_.push_back(e);
      buf_.back().machine = machine_id_;
      return;
    }
    buf_[head_] = e;
    buf_[head_].machine = machine_id_;
    head_ = (head_ + 1) % capacity_;
  }

  /// Fleet identity stamped onto every subsequent event.
  void set_machine_id(uint32_t id) { machine_id_ = id; }
  uint32_t machine_id() const { return machine_id_; }

  size_t capacity() const { return capacity_; }
  size_t size() const { return buf_.size(); }
  bool empty() const { return buf_.empty(); }
  uint64_t total() const { return total_; }
  uint64_t dropped() const { return total_ - buf_.size(); }

  /// i-th retained event, oldest first (0 <= i < size()).
  const AuditEvent& at(size_t i) const {
    return buf_[(head_ + i) % buf_.size()];
  }

  /// Snapshot in chronological order.
  std::vector<AuditEvent> snapshot() const {
    std::vector<AuditEvent> out;
    out.reserve(buf_.size());
    for (size_t i = 0; i < buf_.size(); ++i) out.push_back(at(i));
    return out;
  }

  template <typename Pred>
  uint64_t count_if(Pred pred) const {
    uint64_t n = 0;
    for (size_t i = 0; i < buf_.size(); ++i) n += pred(at(i)) ? 1 : 0;
    return n;
  }
  uint64_t count_kind(AuditKind k) const {
    return count_if([k](const AuditEvent& e) { return e.kind == k; });
  }

  void clear() {
    buf_.clear();
    head_ = 0;
    total_ = 0;
  }

 private:
  size_t capacity_;
  size_t head_ = 0;  ///< index of the oldest event once full
  uint64_t total_ = 0;
  uint32_t machine_id_ = 0;
  std::vector<AuditEvent> buf_;
};

/// Indices (into `events`) of the causal chain ending at `at`: the key
/// installs sharing the failing key's provenance, the sign events made under
/// that provenance whose output (or raw input) matches the failing pointer,
/// the event at `at` itself, and any attack verdict recorded after it. When
/// `at` is not an auth failure the chain is just {at}. An AuthFail whose
/// pointer matches no sign event is the forged-pointer signature: the chain
/// then carries installs + the failure only, and camo-audit reports
/// "no matching sign event (forged pointer)".
std::vector<size_t> causal_chain(const std::vector<AuditEvent>& events,
                                 size_t at);

}  // namespace camo::obs
