// camo::obs — structured tracing for the simulator and the guest kernel.
//
// Every observable claim in the paper is an event stream: key switches
// (§6.1.1), PAuth sign/auth outcomes and the §5.4 brute-force threshold,
// syscall latencies (Fig. 3), context switches, stage-2 permission faults and
// attack outcomes (§6.2). This header defines the typed event record and the
// two producer-side interfaces the emitting layers (camo::cpu, camo::hyp,
// camo::kernel::Machine, camo::attacks) talk to:
//
//  * TraceSink  — receives typed TraceEvents. Producers hold a raw pointer
//    that is null by default, so the disabled path is a single predictable
//    branch per would-be event and the simulated cycle counts are bit-for-bit
//    identical whether or not a sink is attached (events never consume guest
//    cycles).
//  * CycleAttributor — receives one (pc, EL, op class, cycles) record per
//    retired CPU step, the feed for EL-residency accounting and the
//    per-symbol cycle profiler.
//
// obs sits below every other subsystem (it depends only on camo_support), so
// the CPU itself can emit events. Event payloads are therefore plain
// integers; the label helpers below mirror the producer-side enums
// (cpu::ExcClass, cpu::PacKey order) and a test pins them in sync.
#pragma once

#include <cstdint>

namespace camo::obs {

/// Typed trace events. The per-kind payload assignments are documented in
/// DESIGN.md §3a (guest-visible event taxonomy).
enum class EventKind : uint8_t {
  None = 0,
  ExcEnter,       ///< exception entry: k1=ExcClass, k2=FaultKind, imm=iss,
                  ///< a=FAR, b=x8 (syscall nr when k1==Svc), pc=return addr
  ExcExit,        ///< ERET: k2=target EL, a=target pc
  SyscallEnter,   ///< synthesized from ExcEnter/Svc: imm=syscall nr
  SyscallExit,    ///< synthesized from ExcExit to EL0: a=window cycles
  KeyWrite,       ///< MSR to a PAuth key register: imm=sysreg, k1=key index
  PacSign,        ///< PAC insertion: k1=key, a=pointer, b=modifier
  AuthOk,         ///< successful AUT*: k1=key, a=pointer, b=modifier
  AuthFail,       ///< failed AUT*: k1=key, a=pointer, b=modifier
  Stage2Fault,    ///< stage-2 permission denial: k2=access, a=VA
  ContextSwitch,  ///< cpu_switch_to: a=prev task struct, b=next task struct
  HvcCall,        ///< guest→hypervisor call: imm=call nr, a=x0, b=x1
  ModuleLoad,     ///< HVC LoadModule: a=module id, b=init VA, k1=verify ok
  MsrDenied,      ///< hypervisor-denied EL1 MSR write: imm=sysreg
  AttackOutcome,  ///< attack classification: k1=Outcome (0=Hijacked,
                  ///< 1=Detected, 2=Blocked)
  kCount,
};

const char* event_kind_name(EventKind k);

/// One trace record (fixed 40 bytes). `cycles` is the CPU cycle counter at
/// emission — the global timeline every event shares.
struct TraceEvent {
  uint64_t cycles = 0;
  uint64_t pc = 0;     ///< guest pc associated with the event (0 if none)
  uint64_t a = 0;      ///< kind-specific (see EventKind)
  uint64_t b = 0;      ///< kind-specific
  EventKind kind = EventKind::None;
  uint8_t el = 0;      ///< exception level at emission
  uint8_t k1 = 0;      ///< kind-specific small payload (key, class, outcome)
  uint8_t k2 = 0;      ///< kind-specific small payload (fault kind, EL)
  uint16_t imm = 0;    ///< kind-specific 16-bit payload (iss, sysreg, nr)
};

/// Event consumer. Producers treat a null sink as "tracing off".
class TraceSink {
 public:
  virtual ~TraceSink() = default;
  virtual void emit(const TraceEvent& e) = 0;
};

/// Retired-operation classes for per-class metrics (coarser than isa::Op;
/// the CPU classifies each retired instruction).
enum class OpClass : uint8_t {
  Other = 0,
  Branch,       ///< B, B.cond, CBZ/CBNZ, BR
  Call,         ///< BL, BLR
  Ret,          ///< RET
  Load,         ///< LDR/LDRB/LDP*
  Store,        ///< STR/STRB/STP*
  Pauth,        ///< PAC*/AUT*/XPAC*/PACGA (non-branching forms)
  PauthBranch,  ///< RETAA/RETAB/BRAA/BRAB/BLRAA/BLRAB
  Sys,          ///< MRS/MSR/SVC/HVC/BRK/ERET/ISB/DAIF*
  kCount,
};

const char* op_class_name(OpClass c);

/// Per-step cycle consumer: called once per CPU step that consumed cycles,
/// with the pc and EL *before* the step and the cycles the step retired
/// (instruction cost plus any exception-entry cost). Summing `cycles` over
/// all calls reproduces Cpu::cycles() exactly.
class CycleAttributor {
 public:
  virtual ~CycleAttributor() = default;
  virtual void retire(uint64_t pc, uint8_t el, uint8_t op_class,
                      uint64_t cycles) = 0;
};

/// Control-flow kinds the CPU reports to a CfSink — exactly the events a
/// shadow call stack needs: linking calls push a frame, returns pop one,
/// exception entry/exit bracket handler execution as a synthetic frame.
/// Non-linking branches (B, BR, BRAA/BRAB, tail jumps) are deliberately not
/// reported; the call-graph profiler self-heals via the leaf region instead.
enum class CfKind : uint8_t {
  Call,      ///< BL / BLR / BLRAA / BLRAB (authenticated and taken)
  Ret,       ///< RET / RETAA / RETAB (authenticated and taken)
  ExcEnter,  ///< exception entry; info = ExcClass ordinal
  ExcExit,   ///< ERET; info = target EL
};

const char* cf_kind_name(CfKind k);

/// Control-flow consumer fed from the CPU's retire stream. Events for a step
/// fire *during* the step, i.e. before that step's CycleAttributor::retire
/// call; consumers that want call-site attribution buffer them until the
/// retire arrives (obs::CallGraphProfiler does). Null sink = no emission,
/// and attaching one never changes simulated cycle counts.
class CfSink {
 public:
  virtual ~CfSink() = default;
  /// `from_pc` is the instruction (or preferred return address for
  /// exceptions), `to_pc` the new pc after the transfer.
  virtual void control_flow(CfKind kind, uint64_t from_pc, uint64_t to_pc,
                            uint8_t info) = 0;
};

// Label helpers for numeric payloads. These mirror the producer enums
// (cpu::ExcClass, cpu::PacKey, attacks::Outcome declaration order); a test
// asserts they stay in sync.
const char* exc_class_label(uint8_t cls);
const char* pac_key_label(uint8_t key);
const char* outcome_label(uint8_t outcome);

}  // namespace camo::obs
