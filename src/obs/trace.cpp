#include "obs/trace.h"

namespace camo::obs {

const char* event_kind_name(EventKind k) {
  switch (k) {
    case EventKind::None: return "none";
    case EventKind::ExcEnter: return "exc-enter";
    case EventKind::ExcExit: return "exc-exit";
    case EventKind::SyscallEnter: return "syscall-enter";
    case EventKind::SyscallExit: return "syscall-exit";
    case EventKind::KeyWrite: return "key-write";
    case EventKind::PacSign: return "pac-sign";
    case EventKind::AuthOk: return "auth-ok";
    case EventKind::AuthFail: return "auth-fail";
    case EventKind::Stage2Fault: return "stage2-fault";
    case EventKind::ContextSwitch: return "context-switch";
    case EventKind::HvcCall: return "hvc-call";
    case EventKind::ModuleLoad: return "module-load";
    case EventKind::MsrDenied: return "msr-denied";
    case EventKind::AttackOutcome: return "attack-outcome";
    case EventKind::kCount: break;
  }
  return "<bad-event>";
}

const char* op_class_name(OpClass c) {
  switch (c) {
    case OpClass::Other: return "other";
    case OpClass::Branch: return "branch";
    case OpClass::Call: return "call";
    case OpClass::Ret: return "ret";
    case OpClass::Load: return "load";
    case OpClass::Store: return "store";
    case OpClass::Pauth: return "pauth";
    case OpClass::PauthBranch: return "pauth-branch";
    case OpClass::Sys: return "sys";
    case OpClass::kCount: break;
  }
  return "<bad-class>";
}

const char* cf_kind_name(CfKind k) {
  switch (k) {
    case CfKind::Call: return "call";
    case CfKind::Ret: return "ret";
    case CfKind::ExcEnter: return "exc-enter";
    case CfKind::ExcExit: return "exc-exit";
  }
  return "<bad-cf>";
}

// Mirrors cpu::ExcClass declaration order (pinned by ObsLabels.* tests).
const char* exc_class_label(uint8_t cls) {
  static const char* const names[] = {"unknown",    "svc",       "brk",
                                      "insn-abort", "data-abort", "undefined",
                                      "pac-fail",   "irq"};
  return cls < sizeof(names) / sizeof(names[0]) ? names[cls] : "<bad-class>";
}

// Mirrors cpu::PacKey declaration order.
const char* pac_key_label(uint8_t key) {
  static const char* const names[] = {"ia", "ib", "da", "db", "ga"};
  return key < sizeof(names) / sizeof(names[0]) ? names[key] : "<bad-key>";
}

// Mirrors attacks::Outcome declaration order.
const char* outcome_label(uint8_t outcome) {
  static const char* const names[] = {"hijacked", "detected", "blocked"};
  return outcome < sizeof(names) / sizeof(names[0]) ? names[outcome]
                                                    : "<bad-outcome>";
}

}  // namespace camo::obs
