// Minimal JSON support for observability artifacts: a value tree with a
// writer (dump) and a strict recursive-descent parser (parse). Used for the
// BENCH_*.json series, the Chrome trace export, the metrics dump, and — the
// important half — *validating* those artifacts from tests and the ctest
// smoke targets, so a malformed or empty export fails loudly instead of
// producing an unreadable file.
//
// Scope: UTF-8 pass-through, numbers as double, \uXXXX parsed as raw
// code-unit pass-through for BMP characters. No external dependencies.
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

namespace camo::obs::json {

class Value {
 public:
  enum class Kind : uint8_t { Null, Bool, Number, String, Array, Object };

  Value() : kind_(Kind::Null) {}
  explicit Value(bool b) : kind_(Kind::Bool), bool_(b) {}
  explicit Value(double d) : kind_(Kind::Number), num_(d) {}
  explicit Value(uint64_t u)
      : kind_(Kind::Number), num_(static_cast<double>(u)) {}
  explicit Value(int i) : kind_(Kind::Number), num_(i) {}
  explicit Value(std::string s) : kind_(Kind::String), str_(std::move(s)) {}
  explicit Value(const char* s) : kind_(Kind::String), str_(s) {}

  static Value array() {
    Value v;
    v.kind_ = Kind::Array;
    return v;
  }
  static Value object() {
    Value v;
    v.kind_ = Kind::Object;
    return v;
  }

  Kind kind() const { return kind_; }
  bool is_null() const { return kind_ == Kind::Null; }
  bool is_bool() const { return kind_ == Kind::Bool; }
  bool is_number() const { return kind_ == Kind::Number; }
  bool is_string() const { return kind_ == Kind::String; }
  bool is_array() const { return kind_ == Kind::Array; }
  bool is_object() const { return kind_ == Kind::Object; }

  bool as_bool() const { return bool_; }
  double as_number() const { return num_; }
  const std::string& as_string() const { return str_; }
  const std::vector<Value>& items() const { return arr_; }
  /// Object members in insertion order.
  const std::vector<std::pair<std::string, Value>>& members() const {
    return obj_;
  }

  /// Object lookup; nullptr when absent or not an object.
  const Value* get(const std::string& key) const;
  /// Array element; nullptr when out of range or not an array.
  const Value* at(size_t i) const;
  size_t size() const {
    return kind_ == Kind::Array ? arr_.size()
                                : (kind_ == Kind::Object ? obj_.size() : 0);
  }

  // Builders.
  Value& push(Value v);  ///< append to array; returns the stored element
  Value& set(const std::string& key, Value v);  ///< insert/replace member

  /// Serialize. `indent` > 0 pretty-prints.
  std::string dump(int indent = 0) const;

  /// Strict parse of a complete document; std::nullopt on any error.
  static std::optional<Value> parse(const std::string& text);

  /// Escape helper exposed for streaming writers.
  static std::string escape(const std::string& s);

 private:
  void dump_to(std::string& out, int indent, int depth) const;

  Kind kind_;
  bool bool_ = false;
  double num_ = 0;
  std::string str_;
  std::vector<Value> arr_;
  std::vector<std::pair<std::string, Value>> obj_;
};

/// Format a double the way JSON expects (no trailing garbage, integers
/// rendered without exponent when exact).
std::string number_to_string(double d);

}  // namespace camo::obs::json
