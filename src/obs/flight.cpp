#include "obs/flight.h"

#include <cstdlib>

#include "support/format.h"

namespace camo::obs {

std::string hex_u64(uint64_t v) {
  return strformat("0x%llx", static_cast<unsigned long long>(v));
}

uint64_t parse_hex_u64(const json::Value& v) {
  if (v.is_number()) return static_cast<uint64_t>(v.as_number());
  if (!v.is_string()) return 0;
  return std::strtoull(v.as_string().c_str(), nullptr, 0);
}

json::Value audit_event_json(const AuditEvent& e) {
  json::Value o = json::Value::object();
  o.set("kind", json::Value(audit_kind_name(e.kind)));
  o.set("k", json::Value(static_cast<uint64_t>(e.kind)));
  o.set("cycles", json::Value(hex_u64(e.cycles)));
  o.set("pc", json::Value(hex_u64(e.pc)));
  o.set("ptr", json::Value(hex_u64(e.ptr)));
  o.set("ptr2", json::Value(hex_u64(e.ptr2)));
  o.set("modifier", json::Value(hex_u64(e.modifier)));
  o.set("lr", json::Value(hex_u64(e.lr)));
  o.set("prov", json::Value(e.prov));
  o.set("machine", json::Value(static_cast<uint64_t>(e.machine)));
  o.set("key", json::Value(static_cast<uint64_t>(e.key)));
  o.set("el", json::Value(static_cast<uint64_t>(e.el)));
  o.set("mclass", json::Value(static_cast<uint64_t>(e.mclass)));
  o.set("bank", json::Value(static_cast<uint64_t>(e.bank)));
  o.set("aux", json::Value(static_cast<uint64_t>(e.aux)));
  // Emitted only when nonzero: absent means core 0, which keeps bundles
  // recorded before the SMP refactor byte-identical on replay.
  if (e.cpu != 0) o.set("cpu", json::Value(static_cast<uint64_t>(e.cpu)));
  o.set("imm", json::Value(static_cast<uint64_t>(e.imm)));
  return o;
}

bool audit_event_from_json(const json::Value& v, AuditEvent* out) {
  if (!v.is_object() || !out) return false;
  const json::Value* k = v.get("k");
  if (!k || !k->is_number()) return false;
  AuditEvent e;
  e.kind = static_cast<AuditKind>(static_cast<uint8_t>(k->as_number()));
  auto u64 = [&v](const char* name) -> uint64_t {
    const json::Value* f = v.get(name);
    return f ? parse_hex_u64(*f) : 0;
  };
  e.cycles = u64("cycles");
  e.pc = u64("pc");
  e.ptr = u64("ptr");
  e.ptr2 = u64("ptr2");
  e.modifier = u64("modifier");
  e.lr = u64("lr");
  e.prov = u64("prov");
  e.machine = static_cast<uint32_t>(u64("machine"));
  e.key = static_cast<uint8_t>(u64("key"));
  e.el = static_cast<uint8_t>(u64("el"));
  e.mclass = static_cast<uint8_t>(u64("mclass"));
  e.bank = static_cast<uint8_t>(u64("bank"));
  e.aux = static_cast<uint8_t>(u64("aux"));
  e.cpu = static_cast<uint8_t>(u64("cpu"));  // absent = core 0
  e.imm = static_cast<uint16_t>(u64("imm"));
  *out = e;
  return true;
}

namespace {

json::Value trace_event_json(const TraceEvent& e) {
  json::Value o = json::Value::object();
  o.set("kind", json::Value(static_cast<uint64_t>(e.kind)));
  o.set("cycles", json::Value(hex_u64(e.cycles)));
  o.set("pc", json::Value(hex_u64(e.pc)));
  o.set("a", json::Value(hex_u64(e.a)));
  o.set("b", json::Value(hex_u64(e.b)));
  o.set("el", json::Value(static_cast<uint64_t>(e.el)));
  o.set("k1", json::Value(static_cast<uint64_t>(e.k1)));
  o.set("k2", json::Value(static_cast<uint64_t>(e.k2)));
  o.set("imm", json::Value(static_cast<uint64_t>(e.imm)));
  return o;
}

json::Value key_json(const FlightKey& k) {
  json::Value o = json::Value::object();
  o.set("lo", json::Value(hex_u64(k.lo)));
  o.set("hi", json::Value(hex_u64(k.hi)));
  o.set("prov", json::Value(k.prov));
  return o;
}

}  // namespace

json::Value flight_snapshot_json(const FlightSnapshot& s) {
  json::Value o = json::Value::object();
  json::Value regs = json::Value::array();
  for (uint64_t r : s.x) regs.push(json::Value(hex_u64(r)));
  o.set("x", std::move(regs));
  o.set("sp_el0", json::Value(hex_u64(s.sp_el0)));
  o.set("sp_el1", json::Value(hex_u64(s.sp_el1)));
  o.set("pc", json::Value(hex_u64(s.pc)));
  o.set("el", json::Value(static_cast<uint64_t>(s.el)));
  o.set("banked_keys", json::Value(s.banked_keys));
  o.set("elr_el1", json::Value(hex_u64(s.elr_el1)));
  o.set("spsr_el1", json::Value(hex_u64(s.spsr_el1)));
  o.set("esr_el1", json::Value(hex_u64(s.esr_el1)));
  o.set("far_el1", json::Value(hex_u64(s.far_el1)));
  o.set("vbar_el1", json::Value(hex_u64(s.vbar_el1)));
  o.set("sctlr_el1", json::Value(hex_u64(s.sctlr_el1)));
  json::Value keys = json::Value::array();
  for (const FlightKey& k : s.keys) keys.push(key_json(k));
  o.set("keys", std::move(keys));
  json::Value bank = json::Value::array();
  for (const FlightKey& k : s.bank) bank.push(key_json(k));
  o.set("bank", std::move(bank));
  json::Value epoch = json::Value::object();
  epoch.set("s1_gen", json::Value(s.s1_gen));
  epoch.set("s2_gen", json::Value(s.s2_gen));
  o.set("mmu_epoch", std::move(epoch));
  o.set("pending_esr", json::Value(hex_u64(s.pending_esr)));
  // Absent = core 0 (pre-SMP bundles stay byte-identical).
  if (s.cpu != 0) o.set("cpu", json::Value(static_cast<uint64_t>(s.cpu)));
  return o;
}

std::string flight_bundle_json(const FlightRecorder& rec,
                               const std::vector<AuditEvent>& audit,
                               const std::string& attack,
                               const std::string& config, uint64_t seed) {
  json::Value root = json::Value::object();
  root.set("schema", json::Value("camo-flight/v1"));
  json::Value scenario = json::Value::object();
  scenario.set("attack", json::Value(attack));
  scenario.set("config", json::Value(config));
  scenario.set("seed", json::Value(hex_u64(seed)));
  root.set("scenario", std::move(scenario));
  root.set("captured", json::Value(rec.captured()));
  root.set("triggers", json::Value(rec.triggers()));
  if (rec.captured()) {
    root.set("trigger", trace_event_json(rec.trigger_event()));
    json::Value ring = json::Value::array();
    for (const FlightInsn& in : rec.ring()) {
      json::Value o = json::Value::object();
      o.set("cycles", json::Value(hex_u64(in.cycles)));
      o.set("pc", json::Value(hex_u64(in.pc)));
      o.set("op", json::Value(static_cast<uint64_t>(in.op)));
      o.set("el", json::Value(static_cast<uint64_t>(in.el)));
      ring.push(std::move(o));
    }
    root.set("ring", std::move(ring));
    root.set("state", flight_snapshot_json(rec.state()));
  }
  json::Value evs = json::Value::array();
  for (const AuditEvent& e : audit) evs.push(audit_event_json(e));
  root.set("audit", std::move(evs));
  // Causal chain of the terminal auth failure, precomputed so consumers
  // (and humans reading the bundle) do not need the matching rules.
  json::Value chain = json::Value::array();
  size_t fail = audit.size();
  for (size_t i = audit.size(); i-- > 0;) {
    if (audit[i].kind == AuditKind::AuthFail) {
      fail = i;
      break;
    }
  }
  if (fail < audit.size()) {
    for (size_t idx : causal_chain(audit, fail))
      chain.push(json::Value(static_cast<uint64_t>(idx)));
  }
  root.set("chain", std::move(chain));
  return root.dump(2);
}

}  // namespace camo::obs
