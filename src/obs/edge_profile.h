// Edge-bias profile: the observation source the trace tier (DESIGN.md §3i)
// forms superblock traces from.
//
// Every completed dispatch of a cached block records the successor pc the
// terminator produced. The profile keeps the top two successor VAs with
// counts (enough to tell "strongly biased" from "alternating" — a branch
// that flips between two targets never looks biased no matter how hot it
// is) plus the total sample count. When the dominant edge holds at least
// kBiasNum/kBiasDen of at least kMinSamples observed exits, the edge is
// worth extending a trace across: the embedded guard will side-exit on the
// minority target, so a mispredicted edge costs one wasted validation, not
// correctness.
//
// Host-side observation only: recording never changes simulated state, and
// the profile dies with the block it annotates (a rebuilt block starts
// cold, which is exactly right — new bytes, new branch behaviour).
#pragma once

#include <cstdint>

namespace camo::obs {

struct EdgeProfile {
  static constexpr uint32_t kMinSamples = 8;  ///< exits before judging bias
  static constexpr uint32_t kBiasNum = 7;     ///< dominant edge must hold
  static constexpr uint32_t kBiasDen = 8;     ///< >= 7/8 of all exits

  uint64_t va[2] = {0, 0};     ///< top-2 successor VAs, slot 0 = dominant
  uint32_t count[2] = {0, 0};  ///< samples per slot
  uint32_t total = 0;          ///< all recorded exits (incl. evicted slots)

  void reset() { *this = EdgeProfile{}; }

  /// Record one observed successor. Two-slot frequency estimation: a third
  /// VA evicts the weaker slot only once it outgrows it implicitly (the
  /// weaker slot's count decays by replacement), which is all the fidelity
  /// a 7/8-bias test needs.
  void record(uint64_t successor_va) {
    ++total;
    if (count[0] != 0 && va[0] == successor_va) {
      ++count[0];
      return;
    }
    if (count[1] != 0 && va[1] == successor_va) {
      if (++count[1] > count[0]) {  // keep slot 0 dominant
        const uint64_t tv = va[0];
        const uint32_t tc = count[0];
        va[0] = va[1];
        count[0] = count[1];
        va[1] = tv;
        count[1] = tc;
      }
      return;
    }
    if (count[0] == 0) {
      va[0] = successor_va;
      count[0] = 1;
    } else if (count[1] == 0 || count[1] == 1) {
      va[1] = successor_va;  // claim or replace the cold minority slot
      count[1] = 1;
    }
  }

  /// True when enough exits were seen and the dominant edge holds the bias
  /// threshold; `target` is then that edge's successor VA.
  bool biased(uint64_t& target) const {
    if (total < kMinSamples) return false;
    if (static_cast<uint64_t>(count[0]) * kBiasDen <
        static_cast<uint64_t>(total) * kBiasNum)
      return false;
    target = va[0];
    return true;
  }
};

}  // namespace camo::obs
