// RegionIndex: a sorted map from guest VA ranges to symbol names, shared by
// the flat profiler (obs/profile.h) and the call-graph profiler
// (obs/callgraph.h). Regions must not overlap. Register every region before
// profiling starts: add() keeps the vector sorted, so a late insertion
// shifts the indices of the regions sorted after it (the profilers key their
// counters by index).
#pragma once

#include <algorithm>
#include <cstdint>
#include <string>
#include <vector>

namespace camo::obs {

class RegionIndex {
 public:
  struct Region {
    std::string name;
    uint64_t start = 0;  ///< first VA covered
    uint64_t end = 0;    ///< one past the last VA covered
  };

  static constexpr size_t kNone = static_cast<size_t>(-1);

  /// Insert [start, end) under `name`; returns the index it now occupies,
  /// or kNone for an empty range (which is ignored).
  size_t add(std::string name, uint64_t start, uint64_t end) {
    if (end <= start) return kNone;
    auto it = std::upper_bound(
        regions_.begin(), regions_.end(), start,
        [](uint64_t v, const Region& r) { return v < r.start; });
    it = regions_.insert(it, Region{std::move(name), start, end});
    return static_cast<size_t>(it - regions_.begin());
  }

  /// Index of the region containing pc, or kNone.
  size_t find(uint64_t pc) const {
    auto it = std::upper_bound(
        regions_.begin(), regions_.end(), pc,
        [](uint64_t v, const Region& r) { return v < r.start; });
    if (it == regions_.begin()) return kNone;
    --it;
    return pc < it->end ? static_cast<size_t>(it - regions_.begin()) : kNone;
  }

  const Region& operator[](size_t i) const { return regions_[i]; }
  size_t size() const { return regions_.size(); }

 private:
  std::vector<Region> regions_;  ///< sorted by start
};

}  // namespace camo::obs
