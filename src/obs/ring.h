// Fixed-capacity trace ring buffer: the default TraceSink.
//
// Keeps the most recent `capacity` events; older events are overwritten and
// counted in dropped(). Iteration yields events oldest→newest, so a full
// boot-to-panic run reads as a timeline even after wraparound.
#pragma once

#include <cstddef>
#include <vector>

#include "obs/trace.h"

namespace camo::obs {

class TraceRing : public TraceSink {
 public:
  explicit TraceRing(size_t capacity = 1 << 15)
      : capacity_(capacity == 0 ? 1 : capacity) {
    buf_.reserve(capacity_ < 4096 ? capacity_ : 4096);
  }

  void emit(const TraceEvent& e) override {
    ++total_;
    if (buf_.size() < capacity_) {
      buf_.push_back(e);
      return;
    }
    buf_[head_] = e;
    head_ = (head_ + 1) % capacity_;
  }

  size_t capacity() const { return capacity_; }
  size_t size() const { return buf_.size(); }
  bool empty() const { return buf_.empty(); }
  /// Total events ever emitted (including overwritten ones).
  uint64_t total() const { return total_; }
  /// Events lost to wraparound.
  uint64_t dropped() const { return total_ - buf_.size(); }

  /// i-th retained event, oldest first (0 <= i < size()).
  const TraceEvent& at(size_t i) const {
    return buf_[(head_ + i) % buf_.size()];
  }

  /// Snapshot in chronological order.
  std::vector<TraceEvent> snapshot() const {
    std::vector<TraceEvent> out;
    out.reserve(buf_.size());
    for (size_t i = 0; i < buf_.size(); ++i) out.push_back(at(i));
    return out;
  }

  template <typename Pred>
  uint64_t count_if(Pred pred) const {
    uint64_t n = 0;
    for (size_t i = 0; i < buf_.size(); ++i) n += pred(at(i)) ? 1 : 0;
    return n;
  }
  uint64_t count_kind(EventKind k) const {
    return count_if([k](const TraceEvent& e) { return e.kind == k; });
  }

  void clear() {
    buf_.clear();
    head_ = 0;
    total_ = 0;
  }

 private:
  size_t capacity_;
  size_t head_ = 0;  ///< index of the oldest event once full
  uint64_t total_ = 0;
  std::vector<TraceEvent> buf_;
};

}  // namespace camo::obs
