// Crash flight recorder (DESIGN.md §3f).
//
// A black-box for the simulated machine: a fixed-size ring of the last N
// retired instructions (pc, op-class, cycle, EL) that is always armed while
// observability is on, plus a machine-state snapshot (general registers,
// key banks with provenance, MMU fetch epoch, pending-exception syndrome)
// captured automatically the first time a protection violation or attack
// detection is observed. The capture is exportable as a self-contained
// `camo-flight/v1` JSON bundle that embeds the scenario (attack name,
// protection config, seed), the trigger event, the instruction ring, the
// snapshot, the audit stream and its causal chain — everything camo-audit
// needs to pretty-print the failure and re-execute it on a fresh Machine.
//
// Determinism: every field is guest-deterministic (no host clocks), and all
// 64-bit payloads are serialized as hex strings (JSON doubles lose pointer
// precision above 2^53), so re-running the same scenario produces a
// byte-identical bundle — which is exactly the check camo-audit replay does.
#pragma once

#include <array>
#include <cstddef>
#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "obs/audit.h"
#include "obs/json.h"
#include "obs/trace.h"

namespace camo::obs {

/// One retired instruction in the flight ring.
struct FlightInsn {
  uint64_t cycles = 0;
  uint64_t pc = 0;
  uint8_t op = 0;  ///< cpu::OpClass ordinal
  uint8_t el = 0;
};

/// One PAC key with its install provenance (see obs/audit.h).
struct FlightKey {
  uint64_t lo = 0, hi = 0;
  uint64_t prov = 0;
};

/// Machine state at capture time, filled by a provider installed by
/// kernel::Machine (the recorder itself has no CPU dependency).
struct FlightSnapshot {
  std::array<uint64_t, 31> x{};
  uint64_t sp_el0 = 0, sp_el1 = 0;
  uint64_t pc = 0;
  uint8_t el = 0;
  bool banked_keys = false;
  uint64_t elr_el1 = 0, spsr_el1 = 0, esr_el1 = 0, far_el1 = 0;
  uint64_t vbar_el1 = 0, sctlr_el1 = 0;
  std::array<FlightKey, 5> keys{};  ///< live key registers (IA IB DA DB GA)
  std::array<FlightKey, 5> bank{};  ///< EL2-held kernel bank (§8)
  /// MMU fetch epoch at pc: per-map modification generations. The maps'
  /// process-unique uids are deliberately NOT captured — they come from a
  /// process-global counter (mem::next_map_uid), so they are host identity,
  /// not guest state, and would break bundle bit-identity within a process.
  uint64_t s1_gen = 0, s2_gen = 0;
  uint64_t pending_esr = 0;  ///< syndrome of an in-flight exception
  /// Core the snapshot was taken from (the last core the interleaver ran).
  /// Serialized only when nonzero so single-core bundles stay byte-identical
  /// to pre-SMP captures, and deliberately excluded from snapshot_digest —
  /// the digest compares architectural state, not machine topology.
  uint8_t cpu = 0;
};

class FlightRecorder {
 public:
  using StateProvider = std::function<void(FlightSnapshot&)>;

  explicit FlightRecorder(size_t capacity = 256)
      : capacity_(capacity == 0 ? 1 : capacity) {
    buf_.reserve(capacity_ < 1024 ? capacity_ : 1024);
  }

  void set_state_provider(StateProvider p) { provider_ = std::move(p); }

  /// Ring push — called per retired instruction; must stay cheap.
  void retire(uint64_t cycles, uint64_t pc, uint8_t op, uint8_t el) {
    if (buf_.size() < capacity_) {
      buf_.push_back({cycles, pc, op, el});
      return;
    }
    buf_[head_] = {cycles, pc, op, el};
    head_ = (head_ + 1) % capacity_;
  }

  /// Capture on the first violation; later triggers only bump the counter
  /// (the first capture is the causal root — cascading faults after it are
  /// consequences, not causes).
  void trigger(const TraceEvent& e) {
    ++triggers_;
    if (captured_) return;
    captured_ = true;
    trigger_ = e;
    ring_.clear();
    ring_.reserve(buf_.size());
    for (size_t i = 0; i < buf_.size(); ++i)
      ring_.push_back(buf_[(head_ + i) % buf_.size()]);
    if (provider_) provider_(state_);
  }

  bool captured() const { return captured_; }
  uint64_t triggers() const { return triggers_; }
  const TraceEvent& trigger_event() const { return trigger_; }
  const FlightSnapshot& state() const { return state_; }
  /// Instruction ring frozen at capture time, oldest first.
  const std::vector<FlightInsn>& ring() const { return ring_; }

  /// Copy of the live (un-triggered) ring, oldest first. The divergence
  /// bisector uses this to export last-K retirements without a trigger.
  std::vector<FlightInsn> live_ring() const {
    std::vector<FlightInsn> out;
    out.reserve(buf_.size());
    for (size_t i = 0; i < buf_.size(); ++i)
      out.push_back(buf_[(head_ + i) % buf_.size()]);
    return out;
  }

  void clear() {
    buf_.clear();
    ring_.clear();
    head_ = 0;
    triggers_ = 0;
    captured_ = false;
    trigger_ = TraceEvent{};
    state_ = FlightSnapshot{};
  }

 private:
  size_t capacity_;
  size_t head_ = 0;
  bool captured_ = false;
  uint64_t triggers_ = 0;
  TraceEvent trigger_{};
  FlightSnapshot state_{};
  std::vector<FlightInsn> buf_;   ///< live ring
  std::vector<FlightInsn> ring_;  ///< frozen copy at capture
  StateProvider provider_;
};

/// Hex-string codec for 64-bit payloads ("0x1a2b..."); JSON numbers are
/// doubles and cannot hold pointers exactly.
std::string hex_u64(uint64_t v);
uint64_t parse_hex_u64(const json::Value& v);

/// Audit-event JSON codec (hex payloads, kind stored by ordinal + name).
json::Value audit_event_json(const AuditEvent& e);
bool audit_event_from_json(const json::Value& v, AuditEvent* out);

/// Snapshot codec shared by camo-flight/v1 and camo-div/v1 bundles.
json::Value flight_snapshot_json(const FlightSnapshot& s);

/// Assemble a self-contained camo-flight/v1 replay bundle. `audit` is the
/// full audit snapshot for the run; the causal chain of the capture's
/// terminal auth failure (if any) is precomputed into "chain".
std::string flight_bundle_json(const FlightRecorder& rec,
                               const std::vector<AuditEvent>& audit,
                               const std::string& attack,
                               const std::string& config, uint64_t seed);

}  // namespace camo::obs
