// Metrics registry: named monotonic counters, cycle histograms, and gauges.
//
// Counters only ever increase (there is deliberately no decrement or reset —
// regression gating depends on monotonicity within a run). Histograms bucket
// values by floor(log2) with exact count/sum/min/max, which is enough to
// track syscall-latency distributions (Fig. 3) without storing samples.
// Gauges are settable point-in-time doubles for host-side measurements that
// are not monotonic in simulated work — e.g. guest-instructions-per-host-
// second throughput; they are informational, never regression-gated.
//
// References returned by Registry::counter()/histogram()/gauge() are stable
// for the registry's lifetime, so hot emission paths can resolve a name once.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace camo::obs {

class Counter {
 public:
  void inc(uint64_t delta = 1) { value_ += delta; }
  uint64_t value() const { return value_; }

 private:
  uint64_t value_ = 0;
};

class Histogram {
 public:
  static constexpr unsigned kBuckets = 64;

  void record(uint64_t v) {
    ++count_;
    sum_ += v;
    if (count_ == 1 || v < min_) min_ = v;
    if (v > max_) max_ = v;
    ++buckets_[bucket_index(v)];
  }

  uint64_t count() const { return count_; }
  uint64_t sum() const { return sum_; }
  uint64_t min() const { return count_ ? min_ : 0; }
  uint64_t max() const { return max_; }
  double mean() const {
    return count_ ? static_cast<double>(sum_) / static_cast<double>(count_) : 0;
  }
  /// Samples in [2^i, 2^(i+1)) (bucket 0 also holds v == 0).
  uint64_t bucket(unsigned i) const { return i < kBuckets ? buckets_[i] : 0; }

  static unsigned bucket_index(uint64_t v) {
    unsigned i = 0;
    while (v > 1) {
      v >>= 1;
      ++i;
    }
    return i;
  }

  /// Approximate quantile (q in [0,1]) from the log2 buckets: find the
  /// bucket holding the q-th sample and interpolate linearly inside its
  /// value range ([2^i, 2^(i+1)); bucket 0 covers [0,2)), then clamp to the
  /// exact [min,max] envelope. Error is bounded by the bucket width, which
  /// is what a log-bucketed histogram promises; the result is deterministic
  /// and merge-order independent because the buckets are.
  double quantile(double q) const {
    if (count_ == 0) return 0;
    if (q <= 0) return static_cast<double>(min_);
    if (q >= 1) return static_cast<double>(max_);
    // Rank of the target sample (1-based, "nearest-rank" rounded up).
    const uint64_t rank =
        static_cast<uint64_t>(q * static_cast<double>(count_) + 0.5) < 1
            ? 1
            : static_cast<uint64_t>(q * static_cast<double>(count_) + 0.5);
    uint64_t seen = 0;
    for (unsigned i = 0; i < kBuckets; ++i) {
      if (buckets_[i] == 0) continue;
      if (seen + buckets_[i] < rank) {
        seen += buckets_[i];
        continue;
      }
      const double lo = i == 0 ? 0.0 : static_cast<double>(uint64_t{1} << i);
      const double hi = static_cast<double>(
          i >= 63 ? static_cast<double>(uint64_t{1} << 63) * 2.0
                  : static_cast<double>(uint64_t{1} << (i + 1)));
      const double frac = static_cast<double>(rank - seen) /
                          static_cast<double>(buckets_[i]);
      double v = lo + (hi - lo) * frac;
      if (v < static_cast<double>(min_)) v = static_cast<double>(min_);
      if (v > static_cast<double>(max_)) v = static_cast<double>(max_);
      return v;
    }
    return static_cast<double>(max_);
  }
  double p50() const { return quantile(0.50); }
  double p95() const { return quantile(0.95); }
  double p99() const { return quantile(0.99); }

  /// Fold another histogram in (fleet merge): counts, sums and buckets add;
  /// min/max combine. Merging is commutative, so the result is independent
  /// of worker scheduling — fleets still merge in task-index order for the
  /// gauges' sake.
  void merge(const Histogram& other) {
    if (other.count_ == 0) return;
    if (count_ == 0 || other.min_ < min_) min_ = other.min_;
    if (other.max_ > max_) max_ = other.max_;
    count_ += other.count_;
    sum_ += other.sum_;
    for (unsigned i = 0; i < kBuckets; ++i) buckets_[i] += other.buckets_[i];
  }

 private:
  uint64_t count_ = 0, sum_ = 0, min_ = 0, max_ = 0;
  uint64_t buckets_[kBuckets] = {};
};

/// A point-in-time measurement. Unlike Counter it may move in either
/// direction; host wall-clock derived values (throughput) live here.
class Gauge {
 public:
  void set(double v) { value_ = v; }
  double value() const { return value_; }

 private:
  double value_ = 0;
};

class Registry {
 public:
  /// Get-or-create. References stay valid for the registry's lifetime.
  Counter& counter(const std::string& name) { return counters_[name]; }
  Histogram& histogram(const std::string& name) { return histograms_[name]; }
  Gauge& gauge(const std::string& name) { return gauges_[name]; }

  /// Query without creating: 0 / empty histogram stats for unknown names.
  uint64_t value(const std::string& name) const {
    const auto it = counters_.find(name);
    return it == counters_.end() ? 0 : it->second.value();
  }
  bool has_counter(const std::string& name) const {
    return counters_.count(name) != 0;
  }
  const Histogram* find_histogram(const std::string& name) const {
    const auto it = histograms_.find(name);
    return it == histograms_.end() ? nullptr : &it->second;
  }
  const Gauge* find_gauge(const std::string& name) const {
    const auto it = gauges_.find(name);
    return it == gauges_.end() ? nullptr : &it->second;
  }

  /// Name-sorted views (std::map iteration order).
  const std::map<std::string, Counter>& counters() const { return counters_; }
  const std::map<std::string, Histogram>& histograms() const {
    return histograms_;
  }
  const std::map<std::string, Gauge>& gauges() const { return gauges_; }

  /// Fold another registry in: counters add, histograms merge, gauges are
  /// overwritten last-writer-wins. Fleets merge per-machine registries in
  /// task-index order, so for gauges "last" is a deterministic machine (the
  /// highest-index one publishing that name), never a steal-schedule
  /// artifact; per-machine gauge names ("host.throughput.m<id>") cannot
  /// collide at all.
  void merge_from(const Registry& other);

  /// Human-readable dump (one metric per line).
  std::string render_text() const;
  /// JSON object: {"counters": {...}, "histograms": {name: {count,sum,...}},
  /// "gauges": {...}} — the "gauges" key is omitted when no gauge exists,
  /// keeping pre-gauge consumers byte-compatible.
  std::string to_json() const;

 private:
  std::map<std::string, Counter> counters_;
  std::map<std::string, Histogram> histograms_;
  std::map<std::string, Gauge> gauges_;
};

}  // namespace camo::obs
