// Execution coverage maps (DESIGN.md §3g).
//
// obs::CoverageMap records PA-keyed basic-block and edge coverage from the
// retire stream, plus per-EL retire counters. Blocks are discovered
// dynamically: a block starts at every discontinuity target (branch target,
// exception entry, run start) and its length is the longest straight-line
// run observed from that start. Keys are physical addresses so the map is
// stable across VA aliasing and directly comparable with the superblock
// cache and the protected-table layout.
//
// Determinism contract: the map is a pure function of the retire stream
// (pa, va, el per retired instruction). The retire stream is pinned
// bit-identical across all fast_path×superblocks combos (test_superblock),
// so coverage is engine-invariant by construction; fleets merge per-machine
// snapshots in task-index order, so it is --jobs-invariant too.
//
// Serialization: camo-cov/v1, a self-validated JSON bundle (all 64-bit
// payloads hex, see obs/flight.h) with blocks/edges sorted by PA so the
// bytes are canonical.
#pragma once

#include <array>
#include <cstdint>
#include <map>
#include <string>
#include <utility>
#include <vector>

#include "obs/json.h"

namespace camo::obs {

/// One discovered basic block, keyed by start PA.
struct BlockCov {
  uint64_t hits = 0;     ///< entries at this start (discontinuity targets)
  uint64_t max_len = 0;  ///< longest straight-line run, in instructions
};

/// An annotated code range (kernel function or protected-table row target)
/// that report tooling checks coverage against.
struct CovRegion {
  std::string name;   ///< label, e.g. "sys_write" or "syscall_table[1]:sys_write"
  uint64_t pa = 0;    ///< start physical address
  uint64_t len = 0;   ///< bytes
  std::string table;  ///< owning protected table symbol ("" = plain function)
  int row = -1;       ///< row index within `table` (-1 = not a table row)
};

struct CovBundle;
class CoverageMap;
bool cov_bundle_from_json(const json::Value& v, CovBundle* out);

class CoverageMap {
 public:
  static constexpr size_t kEls = 3;

  /// Per retired instruction — must stay cheap. `el` is the EL the
  /// instruction retired at (captured before execution, matching the
  /// attribution rule in cpu::CycleAttributor).
  void retire(uint64_t pa, uint64_t va, uint8_t el) {
    if (el < kEls) ++retired_el_[el];
    if (open_ && va == last_va_ + 4 && pa == last_pa_ + 4) {
      last_va_ = va;
      last_pa_ = pa;
      ++run_len_;
      return;
    }
    const bool had_prev = open_;
    const uint64_t prev_start = cur_start_;
    close_run();
    if (had_prev) ++edges_[{prev_start, pa}];
    ++blocks_[pa].hits;
    open_ = true;
    cur_start_ = pa;
    last_va_ = va;
    last_pa_ = pa;
    run_len_ = 1;
  }

  /// Close the open run and forget continuation state; the next retire()
  /// starts a fresh block with no synthetic edge. Call before reading or
  /// merging the map.
  void flush() {
    close_run();
    last_va_ = 0;
    last_pa_ = 0;
  }

  /// Flushed copy; the live map keeps accumulating.
  CoverageMap snapshot() const {
    CoverageMap c = *this;
    c.flush();
    return c;
  }

  /// Accumulate another (flushed) map: hits/edges/EL counters add,
  /// max_len maxes, regions union by name. Commutative up to region order;
  /// fleets call this in task-index order for canonical bytes.
  void merge_from(const CoverageMap& o);

  void add_region(CovRegion r) { regions_.push_back(std::move(r)); }

  const std::map<uint64_t, BlockCov>& blocks() const { return blocks_; }
  const std::map<std::pair<uint64_t, uint64_t>, uint64_t>& edges() const {
    return edges_;
  }
  const std::vector<CovRegion>& regions() const { return regions_; }
  uint64_t retired_at(size_t el) const {
    return el < kEls ? retired_el_[el] : 0;
  }
  uint64_t retired_total() const {
    return retired_el_[0] + retired_el_[1] + retired_el_[2];
  }
  uint64_t unique_blocks() const { return blocks_.size(); }
  uint64_t unique_edges() const { return edges_.size(); }

  /// True if any retired instruction landed in [pa, pa+len).
  bool any_executed(uint64_t pa, uint64_t len) const;

 private:
  // The JSON codec rebuilds hits/lengths that retire() cannot re-express.
  friend bool cov_bundle_from_json(const json::Value& v, CovBundle* out);

  void close_run() {
    if (!open_) return;
    BlockCov& b = blocks_[cur_start_];
    if (run_len_ > b.max_len) b.max_len = run_len_;
    open_ = false;
    run_len_ = 0;
  }

  std::map<uint64_t, BlockCov> blocks_;
  std::map<std::pair<uint64_t, uint64_t>, uint64_t> edges_;
  std::vector<CovRegion> regions_;
  std::array<uint64_t, kEls> retired_el_{};
  // Open-run state. No pointers into the maps are cached, so the default
  // copy/move semantics stay correct.
  bool open_ = false;
  uint64_t cur_start_ = 0;
  uint64_t last_va_ = 0;
  uint64_t last_pa_ = 0;
  uint64_t run_len_ = 0;
};

/// Parsed camo-cov/v1 bundle.
struct CovBundle {
  std::string label;
  uint64_t machines = 0;
  CoverageMap map;
};

/// Canonical camo-cov/v1 JSON (blocks/edges sorted by PA, regions sorted by
/// (table, row, name)). The map is snapshotted internally; identical retire
/// streams produce byte-identical bundles.
std::string cov_bundle_json(const CoverageMap& map, const std::string& label,
                            uint64_t machines);

/// Structural validation; returns "" when valid, else a message.
std::string validate_cov_bundle(const json::Value& v);

/// Block-level diff between two maps (used by `camo-cov diff`).
struct CovDiff {
  std::vector<uint64_t> only_a;  ///< block start PAs covered only by a
  std::vector<uint64_t> only_b;  ///< block start PAs covered only by b
  uint64_t common = 0;           ///< block starts covered by both
};
CovDiff diff_coverage(const CoverageMap& a, const CoverageMap& b);

}  // namespace camo::obs
