#include "obs/collector.h"

#include <string>

#include "obs/chrome_trace.h"

namespace camo::obs {

namespace {
constexpr uint8_t kExcClassSvc = 1;  // mirrors cpu::ExcClass::Svc
}

Collector::Collector(const Options& opts)
    : opts_(opts), ring_(opts.trace_capacity) {
  for (int el = 0; el < 3; ++el) {
    cycles_el_[el] = &reg_.counter("cycles.el" + std::to_string(el));
    insn_el_[el] = &reg_.counter("insn.el" + std::to_string(el));
  }
  for (size_t c = 0; c < static_cast<size_t>(OpClass::kCount); ++c)
    ops_[c] = &reg_.counter(std::string("ops.") +
                            op_class_name(static_cast<OpClass>(c)));
  syscall_cycles_ = &reg_.histogram("syscall.cycles");
}

void Collector::emit(const TraceEvent& e) {
  ring_.emit(e);
  switch (e.kind) {
    case EventKind::ExcEnter:
      reg_.counter("exc.enter").inc();
      reg_.counter(std::string("exc.") + exc_class_label(e.k1)).inc();
      if (e.k1 == kExcClassSvc) {
        reg_.counter("syscall.count").inc();
        syscall_open_ = true;
        syscall_enter_cycles_ = e.cycles;
        syscall_nr_ = static_cast<uint16_t>(e.b);
        TraceEvent sc{};
        sc.kind = EventKind::SyscallEnter;
        sc.cycles = e.cycles;
        sc.pc = e.pc;
        sc.el = e.el;
        sc.imm = syscall_nr_;
        ring_.emit(sc);
      }
      break;
    case EventKind::ExcExit:
      reg_.counter("exc.exit").inc();
      if (syscall_open_ && e.k2 == 0) {  // ERET back to EL0 closes the window
        syscall_open_ = false;
        const uint64_t window = e.cycles - syscall_enter_cycles_;
        syscall_cycles_->record(window);
        TraceEvent sc{};
        sc.kind = EventKind::SyscallExit;
        sc.cycles = e.cycles;
        sc.pc = e.a;
        sc.el = e.el;
        sc.imm = syscall_nr_;
        sc.a = window;
        ring_.emit(sc);
      }
      break;
    case EventKind::KeyWrite:
      reg_.counter("key.write").inc();
      reg_.counter(std::string("key.write.") + pac_key_label(e.k1)).inc();
      break;
    case EventKind::PacSign:
      reg_.counter("pauth.sign").inc();
      reg_.counter(std::string("pauth.sign.") + pac_key_label(e.k1)).inc();
      break;
    case EventKind::AuthOk:
      reg_.counter("pauth.auth.ok").inc();
      break;
    case EventKind::AuthFail:
      reg_.counter("pauth.auth.fail").inc();
      reg_.counter(std::string("pauth.auth.fail.") + pac_key_label(e.k1))
          .inc();
      break;
    case EventKind::Stage2Fault:
      reg_.counter("stage2.fault").inc();
      break;
    case EventKind::ContextSwitch:
      reg_.counter("sched.switch").inc();
      break;
    case EventKind::HvcCall:
      reg_.counter("hvc.call").inc();
      break;
    case EventKind::ModuleLoad:
      reg_.counter("module.load").inc();
      break;
    case EventKind::MsrDenied:
      reg_.counter("msr.denied").inc();
      break;
    case EventKind::AttackOutcome:
      reg_.counter("attack.outcome").inc();
      reg_.counter(std::string("attack.") + outcome_label(e.k1)).inc();
      break;
    default:
      break;
  }
}

void Collector::retire(uint64_t pc, uint8_t el, uint8_t op_class,
                       uint64_t cycles) {
  if (el < 3) {
    cycles_el_[el]->inc(cycles);
    insn_el_[el]->inc();
  }
  if (op_class < static_cast<uint8_t>(OpClass::kCount))
    ops_[op_class]->inc();
  if (opts_.profile) prof_.retire(pc, el, op_class, cycles);
  if (opts_.callgraph) cg_.retire(pc, el, op_class, cycles);
}

void Collector::control_flow(CfKind kind, uint64_t from_pc, uint64_t to_pc,
                             uint8_t info) {
  if (opts_.callgraph) cg_.control_flow(kind, from_pc, to_pc, info);
}

std::string Collector::chrome_trace_json() const {
  return obs::chrome_trace_json(ring_.snapshot());
}

}  // namespace camo::obs
