#include "obs/collector.h"

#include <string>

#include "obs/chrome_trace.h"

namespace camo::obs {

namespace {
constexpr uint8_t kExcClassSvc = 1;   // mirrors cpu::ExcClass::Svc
constexpr uint8_t kOutcomeDetected = 1;  // mirrors attacks::Outcome::Detected
constexpr uint64_t kBurstGapCycles = 32;
}  // namespace

Collector::Collector(const Options& opts)
    : opts_(opts),
      ring_(opts.trace_capacity),
      audit_log_(opts.audit_capacity),
      flight_(opts.flight_capacity) {
  for (int el = 0; el < 3; ++el) {
    cycles_el_[el] = &reg_.counter("cycles.el" + std::to_string(el));
    insn_el_[el] = &reg_.counter("insn.el" + std::to_string(el));
  }
  for (size_t c = 0; c < static_cast<size_t>(OpClass::kCount); ++c)
    ops_[c] = &reg_.counter(std::string("ops.") +
                            op_class_name(static_cast<OpClass>(c)));
  syscall_cycles_ = &reg_.histogram("syscall.cycles");
  // Created eagerly so the registry shape is identical whether or not the
  // run produced samples (fleet merges and cross-config diffs rely on it).
  sign_to_auth_ = &reg_.histogram("pauth.sign_to_auth.cycles");
  key_switch_ = &reg_.histogram("key.switch.cycles");
}

void Collector::emit(const TraceEvent& e) {
  ring_.emit(e);
  switch (e.kind) {
    case EventKind::ExcEnter:
      reg_.counter("exc.enter").inc();
      reg_.counter(std::string("exc.") + exc_class_label(e.k1)).inc();
      if (e.k1 == kExcClassSvc) {
        reg_.counter("syscall.count").inc();
        syscall_open_ = true;
        syscall_enter_cycles_ = e.cycles;
        syscall_nr_ = static_cast<uint16_t>(e.b);
        TraceEvent sc{};
        sc.kind = EventKind::SyscallEnter;
        sc.cycles = e.cycles;
        sc.pc = e.pc;
        sc.el = e.el;
        sc.imm = syscall_nr_;
        if (!replaying_) ring_.emit(sc);
      }
      break;
    case EventKind::ExcExit:
      reg_.counter("exc.exit").inc();
      if (syscall_open_ && e.k2 == 0) {  // ERET back to EL0 closes the window
        syscall_open_ = false;
        const uint64_t window = e.cycles - syscall_enter_cycles_;
        syscall_cycles_->record(window);
        TraceEvent sc{};
        sc.kind = EventKind::SyscallExit;
        sc.cycles = e.cycles;
        sc.pc = e.a;
        sc.el = e.el;
        sc.imm = syscall_nr_;
        sc.a = window;
        if (!replaying_) ring_.emit(sc);
      }
      break;
    case EventKind::KeyWrite:
      reg_.counter("key.write").inc();
      reg_.counter(std::string("key.write.") + pac_key_label(e.k1)).inc();
      if (burst_open_ && e.cycles - burst_last_ <= kBurstGapCycles) {
        burst_last_ = e.cycles;
        ++burst_writes_;
      } else {
        if (burst_open_ && burst_writes_ >= 2)
          key_switch_->record(burst_last_ - burst_first_);
        burst_open_ = true;
        burst_first_ = burst_last_ = e.cycles;
        burst_writes_ = 1;
      }
      break;
    case EventKind::PacSign:
      reg_.counter("pauth.sign").inc();
      reg_.counter(std::string("pauth.sign.") + pac_key_label(e.k1)).inc();
      break;
    case EventKind::AuthOk:
      reg_.counter("pauth.auth.ok").inc();
      break;
    case EventKind::AuthFail:
      reg_.counter("pauth.auth.fail").inc();
      reg_.counter(std::string("pauth.auth.fail.") + pac_key_label(e.k1))
          .inc();
      break;
    case EventKind::Stage2Fault:
      reg_.counter("stage2.fault").inc();
      break;
    case EventKind::ContextSwitch:
      reg_.counter("sched.switch").inc();
      break;
    case EventKind::HvcCall:
      reg_.counter("hvc.call").inc();
      break;
    case EventKind::ModuleLoad:
      reg_.counter("module.load").inc();
      break;
    case EventKind::MsrDenied:
      reg_.counter("msr.denied").inc();
      break;
    case EventKind::AttackOutcome:
      reg_.counter("attack.outcome").inc();
      reg_.counter(std::string("attack.") + outcome_label(e.k1)).inc();
      break;
    default:
      break;
  }
  // Flight-recorder capture: any protection violation or attack detection
  // freezes the instruction ring and snapshots machine state (first trigger
  // wins — it is the causal root).
  const bool violation =
      e.kind == EventKind::AuthFail || e.kind == EventKind::Stage2Fault ||
      e.kind == EventKind::MsrDenied ||
      (e.kind == EventKind::AttackOutcome && e.k1 == kOutcomeDetected);
  if (violation) flight_.trigger(e);
}

void Collector::replay(const TraceEvent& e) {
  replaying_ = true;
  emit(e);
  replaying_ = false;
}

void Collector::audit(const AuditEvent& e) {
  audit_log_.audit(e);
  switch (e.kind) {
    case AuditKind::Sign:
      if (pending_signs_.size() < kMaxPendingSigns ||
          pending_signs_.count(e.ptr2)) {
        pending_signs_[e.ptr2] = e.cycles;
      } else {
        reg_.counter("pauth.sign_to_auth.dropped").inc();
      }
      break;
    case AuditKind::AuthOk:
    case AuditKind::AuthFail: {
      const auto it = pending_signs_.find(e.ptr);
      if (it != pending_signs_.end()) {
        sign_to_auth_->record(e.cycles - it->second);
        pending_signs_.erase(it);
      }
      break;
    }
    default:
      break;
  }
}

void Collector::enable_percpu(unsigned cores) {
  insn_cpu_.clear();
  cycles_cpu_.clear();
  for (unsigned c = 0; c < cores; ++c) {
    insn_cpu_.push_back(&reg_.counter("insn.c" + std::to_string(c)));
    cycles_cpu_.push_back(&reg_.counter("cycles.c" + std::to_string(c)));
  }
}

void Collector::retire(uint64_t pc, uint8_t el, uint8_t op_class,
                       uint64_t cycles) {
  // retired_cycles_ is the cycle counter *before* this step (summing the
  // retire feed reproduces Cpu::cycles()), matching the pre-step pc/el.
  flight_.retire(retired_cycles_, pc, op_class, el);
  retired_cycles_ += cycles;
  if (el < 3) {
    cycles_el_[el]->inc(cycles);
    insn_el_[el]->inc();
  }
  if (op_class < static_cast<uint8_t>(OpClass::kCount))
    ops_[op_class]->inc();
  if (active_cpu_ < insn_cpu_.size()) {
    insn_cpu_[active_cpu_]->inc();
    cycles_cpu_[active_cpu_]->inc(cycles);
  }
  if (opts_.profile) prof_.retire(pc, el, op_class, cycles);
  if (opts_.callgraph) cg_.retire(pc, el, op_class, cycles);
}

void Collector::control_flow(CfKind kind, uint64_t from_pc, uint64_t to_pc,
                             uint8_t info) {
  if (opts_.callgraph) cg_.control_flow(kind, from_pc, to_pc, info);
}

std::string Collector::chrome_trace_json() const {
  return obs::chrome_trace_json(ring_.snapshot());
}

}  // namespace camo::obs
