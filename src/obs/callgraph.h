// CallGraphProfiler: hierarchical, call-stack-aware cycle attribution.
//
// The flat profiler answers "which symbol is hot"; this one answers "which
// *path* is hot" — the distinction the paper's evaluation lives on (PACIA
// cycles on the syscall path vs. the context-switch path, §6). It maintains
// a shadow call stack from the CPU's retire stream: linking calls (CfKind::
// Call) push a frame named after the callee's region, returns pop one, and
// exception entry/exit bracket handler execution as synthetic "[exc:svc]"-
// style frames. Every retired cycle is attributed to the full stack at the
// time of retirement, accumulated in a prefix-shared call tree.
//
// Accounting contract (pinned by tests, same as the flat profiler):
//   * the sum over all tree nodes equals Cpu::cycles() exactly — every
//     retired cycle lands somewhere, "[other]" / "[truncated]" included;
//   * attaching the profiler never changes simulated cycle counts.
//
// Robustness: the shadow stack is advisory, not trusted. A RET whose shadow
// top is an exception frame is ignored; an ERET with no exception frame on
// the stack (the kernel's first drop to EL0) leaves the stack alone; a pc
// outside the top frame's region is self-healed by appending the leaf
// region. Under context switching, attribution is wall-clock, like the
// syscall-latency histogram: the stack follows the *CPU*, not the task.
//
// Export: folded-stack text ("kernel;syscall;pac_sign 123" per line) directly
// consumable by flamegraph.pl or speedscope, plus a human-readable top-stacks
// table. Lines are sorted, so equal runs produce byte-identical output.
#pragma once

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "obs/region.h"
#include "obs/trace.h"

namespace camo::obs {

class CallGraphProfiler : public CycleAttributor, public CfSink {
 public:
  /// Frames nested deeper than this are collapsed into a "[truncated]"
  /// child (accounting stays exact; only the shape is capped).
  static constexpr size_t kMaxDepth = 512;

  /// Register [start, end) under `name`. Regions must not overlap; call
  /// before attaching the profiler to a CPU.
  void add_region(std::string name, uint64_t start, uint64_t end);

  // Producer interfaces -----------------------------------------------------
  /// Control-flow events are buffered and applied *after* the same step's
  /// retire() call, so a call instruction's own cycles are attributed to the
  /// caller's stack, not the callee's.
  void control_flow(CfKind kind, uint64_t from_pc, uint64_t to_pc,
                    uint8_t info) override;
  void retire(uint64_t pc, uint8_t el, uint8_t op_class,
              uint64_t cycles) override;

  // Accounting --------------------------------------------------------------
  uint64_t total_cycles() const { return total_cycles_; }
  uint64_t total_retires() const { return total_retires_; }
  /// Current shadow-stack depth (frames tracked; excludes collapsed ones).
  size_t depth() const { return stack_.size(); }
  /// Number of distinct stacks (tree nodes) with attributed cycles.
  size_t hot_node_count() const;

  // Export ------------------------------------------------------------------
  /// Folded-stack text: one "frame;frame;leaf <cycles>" line per distinct
  /// stack with attributed cycles, sorted lexicographically.
  std::string folded(char sep = ';') const;
  /// The `n` hottest stacks as a human-readable table (cycles, %, stack).
  std::string top_stacks(size_t n = 10) const;

  void clear();

 private:
  struct Node {
    int name = -1;    ///< index into names_
    int parent = -1;  ///< node index; -1 for the root
    bool exc = false; ///< synthetic exception frame (only ExcExit pops it)
    uint64_t cycles = 0;
    uint64_t retires = 0;
    std::unordered_map<int, int> children;  ///< name id -> node index
  };

  struct PendingCf {
    CfKind kind;
    uint64_t to_pc;
    uint8_t info;
  };

  int intern(const std::string& name);
  int intern_region(uint64_t pc);  ///< name id of the region holding pc
  /// Find-or-create the child of `node` named `name`.
  int child(int node, int name, bool exc);
  int current() const { return stack_.empty() ? 0 : stack_.back(); }
  void apply(const PendingCf& cf);
  void collect_lines(std::vector<std::pair<std::string, uint64_t>>& out,
                     char sep) const;

  RegionIndex index_;
  std::vector<int> region_names_;  ///< parallel to index_: interned name ids

  std::vector<std::string> names_;
  std::unordered_map<std::string, int> name_ids_;

  std::vector<Node> nodes_;   ///< nodes_[0] is the root (lazily created)
  std::vector<int> stack_;    ///< node indices, bottom to top
  uint64_t overflow_ = 0;     ///< frames collapsed past kMaxDepth
  std::vector<PendingCf> pending_;

  uint64_t total_cycles_ = 0;
  uint64_t total_retires_ = 0;

  int other_name_ = -1;      ///< "[other]"
  int truncated_name_ = -1;  ///< "[truncated]"
};

}  // namespace camo::obs
