// Architectural state digests (DESIGN.md §3g).
//
// obs::StateDigest is a rolling FNV-1a/64 over machine words; snapshot_digest
// folds a full FlightSnapshot (general registers, PSTATE/EL, both key banks
// with provenance, system registers, MMU fetch-epoch generations) plus the
// cycle and retired-instruction counters into one 64-bit value. Two machines
// with equal digests at the same retirement count are, for divergence
// purposes, in the same architectural state.
//
// The divergence bisector (kernel/bisect.h) samples digests every N
// retirements as cheap windowed checkpoints: larger N costs fewer snapshot
// walks during the forward scan but widens the window the binary search has
// to split afterwards — total probe work is O(window · log N), so N trades
// linear scan cost against logarithmic re-run cost (see DESIGN.md §3g).
#pragma once

#include <cstddef>
#include <cstdint>
#include <vector>

#include "obs/flight.h"

namespace camo::obs {

/// Rolling FNV-1a, 64-bit.
class StateDigest {
 public:
  static constexpr uint64_t kOffset = 14695981039346656037ull;
  static constexpr uint64_t kPrime = 1099511628211ull;

  void add(uint64_t v) {
    for (int i = 0; i < 8; ++i) {
      h_ = (h_ ^ (v & 0xFF)) * kPrime;
      v >>= 8;
    }
  }

  uint64_t value() const { return h_; }

 private:
  uint64_t h_ = kOffset;
};

/// Digest of a full snapshot plus the cycle/retired counters.
uint64_t snapshot_digest(const FlightSnapshot& s, uint64_t cycles,
                         uint64_t retired);

/// One sampled checkpoint: digest of the state after `retired` retirements.
struct DigestCheckpoint {
  uint64_t retired = 0;
  uint64_t digest = 0;
};
using DigestTrail = std::vector<DigestCheckpoint>;

}  // namespace camo::obs
