// The camo-bench/v1 document schema, shared by the producers (bench::Session
// in bench/bench_util.h) and the consumers (tools/camo-perfdiff, tests).
//
// A document is one bench binary's emitted series:
//   {
//     "schema": "camo-bench/v1",
//     "bench": "Figure 3", "title": "...", "smoke": true,
//     "seed": 12648430,                    // optional, runs that use RNG
//     "jobs": 8,                           // optional, absent means 1:
//                                          // host threads the run sharded
//                                          // across (--jobs); wall-clock
//                                          // series are not comparable
//                                          // across different jobs values
//     "cores": 2,                          // optional, absent means 1:
//                                          // guest cores per machine
//                                          // (--cores); changes simulated
//                                          // results, so documents with
//                                          // different cores are never
//                                          // comparable
//     "sb": false,                         // optional, absent means true:
//                                          // whether the superblock engine
//                                          // was allowed (--sb); host-side
//                                          // only, simulated cycles are
//                                          // engine-independent
//     "trace": true,                       // optional, absent means false:
//                                          // whether the trace tier was
//                                          // allowed on top of superblocks
//                                          // (--trace); recordings predating
//                                          // the tier parse as trace-less
//     "snap": true,                        // optional, absent means false:
//                                          // snapshot/fork machine reuse was
//                                          // on (--snap, DESIGN.md §3j);
//                                          // guest-visible results are
//                                          // identical either way, only
//                                          // host boot cost and the
//                                          // informational snap.*/imgcache.*
//                                          // series change
//     "series": [ {"config": "full", "benchmark": "null syscall",
//                  "value": 1234.5, "unit": "cycles/op",
//                  "relative": 1.31},  ... ]
//   }
// Validation lives here so a bench that emits a malformed document and a
// perfdiff run over a corrupt baseline fail with the same message.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "obs/json.h"

namespace camo::obs {

inline constexpr const char* kBenchSchemaId = "camo-bench/v1";

struct BenchSeriesPoint {
  std::string config;     ///< protection/config axis ("none", "full", ...)
  std::string benchmark;  ///< benchmark axis ("null syscall", ...)
  double value = 0;
  std::string unit;  ///< "cycles", "ns", "cycles/op", "ratio", ...
  std::optional<double> relative;  ///< vs the baseline config, when meaningful
};

struct BenchDoc {
  std::string bench;  ///< bench id ("Figure 3", "Section 5.4", ...)
  std::string title;
  bool smoke = false;
  std::optional<uint64_t> seed;  ///< RNG seed the run used, when recorded
  unsigned jobs = 1;             ///< host threads of the run (absent = 1)
  unsigned cores = 1;            ///< guest cores per machine (absent = 1)
  bool sb = true;      ///< superblock engine allowed (absent = true)
  bool trace = false;  ///< trace tier allowed (absent = false)
  bool snap = false;   ///< snapshot/fork reuse on (absent = false)
  std::vector<BenchSeriesPoint> series;
};

/// Validate a parsed document against the camo-bench/v1 schema. Returns an
/// empty string when valid, else a description of the problem.
std::string validate_bench_json(const json::Value& doc);

/// Validate + destructure. On failure returns nullopt and, when `error` is
/// non-null, stores the validation message.
std::optional<BenchDoc> parse_bench_doc(const json::Value& doc,
                                        std::string* error = nullptr);

/// Read, parse and validate a camo-bench/v1 file.
std::optional<BenchDoc> load_bench_file(const std::string& path,
                                        std::string* error = nullptr);

}  // namespace camo::obs
