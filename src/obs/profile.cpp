#include "obs/profile.h"

#include <algorithm>

#include "support/format.h"

namespace camo::obs {

void Profiler::add_region(std::string name, uint64_t start, uint64_t end) {
  if (end <= start) return;
  regions_.push_back(Region{std::move(name), start, end, 0, 0});
  sorted_ = false;
}

const Profiler::Region* Profiler::find(uint64_t pc) const {
  // upper_bound on start, then check containment in the preceding region.
  auto it = std::upper_bound(
      regions_.begin(), regions_.end(), pc,
      [](uint64_t v, const Region& r) { return v < r.start; });
  if (it == regions_.begin()) return nullptr;
  --it;
  return pc < it->end ? &*it : nullptr;
}

void Profiler::retire(uint64_t pc, uint8_t /*el*/, uint8_t /*op_class*/,
                      uint64_t cycles) {
  if (!sorted_) {
    std::sort(regions_.begin(), regions_.end(),
              [](const Region& a, const Region& b) { return a.start < b.start; });
    sorted_ = true;
  }
  Region* r = const_cast<Region*>(find(pc));
  if (!r) r = &other_;
  r->cycles += cycles;
  ++r->retires;
}

std::vector<Profiler::Region> Profiler::entries() const {
  std::vector<Region> out;
  out.reserve(regions_.size() + 1);
  for (const Region& r : regions_)
    if (r.cycles || r.retires) out.push_back(r);
  if (other_.cycles || other_.retires) out.push_back(other_);
  std::sort(out.begin(), out.end(),
            [](const Region& a, const Region& b) { return a.cycles > b.cycles; });
  return out;
}

uint64_t Profiler::total_cycles() const {
  uint64_t sum = other_.cycles;
  for (const Region& r : regions_) sum += r.cycles;
  return sum;
}

uint64_t Profiler::total_retires() const {
  uint64_t sum = other_.retires;
  for (const Region& r : regions_) sum += r.retires;
  return sum;
}

std::string Profiler::flat_profile() const {
  const uint64_t total = total_cycles();
  std::string out = strformat("%12s  %6s  %10s  %s\n", "cycles", "%", "retires",
                              "symbol");
  for (const Region& r : entries()) {
    const double pct =
        total ? 100.0 * static_cast<double>(r.cycles) / static_cast<double>(total)
              : 0.0;
    out += strformat("%12llu  %5.1f%%  %10llu  %s\n",
                     static_cast<unsigned long long>(r.cycles), pct,
                     static_cast<unsigned long long>(r.retires),
                     r.name.c_str());
  }
  out += strformat("%12llu  100.0%%  %10llu  (total)\n",
                   static_cast<unsigned long long>(total),
                   static_cast<unsigned long long>(total_retires()));
  return out;
}

void Profiler::clear() {
  for (Region& r : regions_) {
    r.cycles = 0;
    r.retires = 0;
  }
  other_.cycles = 0;
  other_.retires = 0;
}

}  // namespace camo::obs
