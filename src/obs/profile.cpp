#include "obs/profile.h"

#include <algorithm>

#include <cstddef>

#include "support/format.h"

namespace camo::obs {

void Profiler::add_region(std::string name, uint64_t start, uint64_t end) {
  const size_t idx = index_.add(std::move(name), start, end);
  if (idx == RegionIndex::kNone) return;
  counts_.insert(counts_.begin() + static_cast<ptrdiff_t>(idx), Counts{});
}

void Profiler::retire(uint64_t pc, uint8_t /*el*/, uint8_t /*op_class*/,
                      uint64_t cycles) {
  const size_t idx = index_.find(pc);
  Counts& c = idx == RegionIndex::kNone ? other_ : counts_[idx];
  c.cycles += cycles;
  ++c.retires;
}

std::vector<Profiler::Region> Profiler::entries() const {
  std::vector<Region> out;
  out.reserve(index_.size() + 1);
  for (size_t i = 0; i < index_.size(); ++i) {
    if (!counts_[i].cycles && !counts_[i].retires) continue;
    const auto& r = index_[i];
    out.push_back(
        Region{r.name, r.start, r.end, counts_[i].cycles, counts_[i].retires});
  }
  if (other_.cycles || other_.retires)
    out.push_back(Region{"[other]", 0, 0, other_.cycles, other_.retires});
  std::sort(out.begin(), out.end(),
            [](const Region& a, const Region& b) { return a.cycles > b.cycles; });
  return out;
}

uint64_t Profiler::total_cycles() const {
  uint64_t sum = other_.cycles;
  for (const Counts& c : counts_) sum += c.cycles;
  return sum;
}

uint64_t Profiler::total_retires() const {
  uint64_t sum = other_.retires;
  for (const Counts& c : counts_) sum += c.retires;
  return sum;
}

std::string Profiler::flat_profile() const {
  const uint64_t total = total_cycles();
  std::string out = strformat("%12s  %6s  %10s  %s\n", "cycles", "%", "retires",
                              "symbol");
  for (const Region& r : entries()) {
    const double pct =
        total ? 100.0 * static_cast<double>(r.cycles) / static_cast<double>(total)
              : 0.0;
    out += strformat("%12llu  %5.1f%%  %10llu  %s\n",
                     static_cast<unsigned long long>(r.cycles), pct,
                     static_cast<unsigned long long>(r.retires),
                     r.name.c_str());
  }
  out += strformat("%12llu  100.0%%  %10llu  (total)\n",
                   static_cast<unsigned long long>(total),
                   static_cast<unsigned long long>(total_retires()));
  return out;
}

void Profiler::clear() {
  for (Counts& c : counts_) c = Counts{};
  other_ = Counts{};
}

}  // namespace camo::obs
