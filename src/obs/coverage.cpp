#include "obs/coverage.h"

#include <algorithm>

#include "obs/flight.h"
#include "support/format.h"

namespace camo::obs {

void CoverageMap::merge_from(const CoverageMap& o) {
  flush();
  for (const auto& [pa, b] : o.blocks_) {
    BlockCov& dst = blocks_[pa];
    dst.hits += b.hits;
    if (b.max_len > dst.max_len) dst.max_len = b.max_len;
  }
  for (const auto& [edge, hits] : o.edges_) edges_[edge] += hits;
  for (size_t i = 0; i < kEls; ++i) retired_el_[i] += o.retired_el_[i];
  for (const CovRegion& r : o.regions_) {
    bool have = false;
    for (const CovRegion& mine : regions_)
      if (mine.name == r.name && mine.pa == r.pa) {
        have = true;
        break;
      }
    if (!have) regions_.push_back(r);
  }
}

bool CoverageMap::any_executed(uint64_t pa, uint64_t len) const {
  const uint64_t end = pa + len;
  // Blocks whose start is below `end`; walk backwards until a block cannot
  // reach [pa, end) any more. max_len is bounded, so scanning back to the
  // first block with start+4*max_len <= pa would need a global bound; the
  // map is small (report-time only), so scan all candidates below end.
  for (auto it = blocks_.upper_bound(end - 1); it != blocks_.begin();) {
    --it;
    const uint64_t b_end = it->first + 4 * it->second.max_len;
    if (b_end > pa) return true;
  }
  return false;
}

namespace {

std::vector<CovRegion> sorted_regions(const CoverageMap& m) {
  std::vector<CovRegion> rs = m.regions();
  std::sort(rs.begin(), rs.end(), [](const CovRegion& a, const CovRegion& b) {
    if (a.table != b.table) return a.table < b.table;
    if (a.row != b.row) return a.row < b.row;
    if (a.name != b.name) return a.name < b.name;
    return a.pa < b.pa;
  });
  return rs;
}

}  // namespace

std::string cov_bundle_json(const CoverageMap& map, const std::string& label,
                            uint64_t machines) {
  const CoverageMap m = map.snapshot();
  json::Value root = json::Value::object();
  root.set("schema", json::Value("camo-cov/v1"));
  root.set("label", json::Value(label));
  root.set("machines", json::Value(machines));
  json::Value retired = json::Value::object();
  retired.set("el0", json::Value(hex_u64(m.retired_at(0))));
  retired.set("el1", json::Value(hex_u64(m.retired_at(1))));
  retired.set("el2", json::Value(hex_u64(m.retired_at(2))));
  root.set("retired", std::move(retired));
  json::Value blocks = json::Value::array();
  for (const auto& [pa, b] : m.blocks()) {
    json::Value o = json::Value::object();
    o.set("pa", json::Value(hex_u64(pa)));
    o.set("hits", json::Value(hex_u64(b.hits)));
    o.set("len", json::Value(b.max_len));
    blocks.push(std::move(o));
  }
  root.set("blocks", std::move(blocks));
  json::Value edges = json::Value::array();
  for (const auto& [edge, hits] : m.edges()) {
    json::Value o = json::Value::object();
    o.set("from", json::Value(hex_u64(edge.first)));
    o.set("to", json::Value(hex_u64(edge.second)));
    o.set("hits", json::Value(hex_u64(hits)));
    edges.push(std::move(o));
  }
  root.set("edges", std::move(edges));
  json::Value regions = json::Value::array();
  for (const CovRegion& r : sorted_regions(m)) {
    json::Value o = json::Value::object();
    o.set("name", json::Value(r.name));
    o.set("pa", json::Value(hex_u64(r.pa)));
    o.set("len", json::Value(r.len));
    o.set("table", json::Value(r.table));
    o.set("row", json::Value(static_cast<uint64_t>(
                     r.row < 0 ? 0xFFFFFFFFu : static_cast<uint32_t>(r.row))));
    regions.push(std::move(o));
  }
  root.set("regions", std::move(regions));
  return root.dump(2);
}

std::string validate_cov_bundle(const json::Value& v) {
  if (!v.is_object()) return "bundle is not an object";
  const json::Value* schema = v.get("schema");
  if (!schema || !schema->is_string() ||
      schema->as_string() != "camo-cov/v1")
    return "schema is not camo-cov/v1";
  const json::Value* label = v.get("label");
  if (!label || !label->is_string()) return "missing label";
  const json::Value* machines = v.get("machines");
  if (!machines || !machines->is_number()) return "missing machines";
  const json::Value* retired = v.get("retired");
  if (!retired || !retired->is_object()) return "missing retired";
  for (const char* el : {"el0", "el1", "el2"})
    if (!retired->get(el)) return strformat("retired missing %s", el);
  const json::Value* blocks = v.get("blocks");
  if (!blocks || !blocks->is_array()) return "missing blocks array";
  uint64_t prev_pa = 0;
  bool first = true;
  for (size_t i = 0; i < blocks->size(); ++i) {
    const json::Value& b = *blocks->at(i);
    if (!b.is_object() || !b.get("pa") || !b.get("hits") || !b.get("len"))
      return strformat("block %zu malformed", i);
    const uint64_t pa = parse_hex_u64(*b.get("pa"));
    if (!first && pa <= prev_pa) return "blocks not sorted by pa";
    prev_pa = pa;
    first = false;
  }
  const json::Value* edges = v.get("edges");
  if (!edges || !edges->is_array()) return "missing edges array";
  for (size_t i = 0; i < edges->size(); ++i) {
    const json::Value& e = *edges->at(i);
    if (!e.is_object() || !e.get("from") || !e.get("to") || !e.get("hits"))
      return strformat("edge %zu malformed", i);
  }
  const json::Value* regions = v.get("regions");
  if (!regions || !regions->is_array()) return "missing regions array";
  for (size_t i = 0; i < regions->size(); ++i) {
    const json::Value& r = *regions->at(i);
    if (!r.is_object() || !r.get("name") || !r.get("pa") || !r.get("len") ||
        !r.get("table") || !r.get("row"))
      return strformat("region %zu malformed", i);
  }
  return "";
}

bool cov_bundle_from_json(const json::Value& v, CovBundle* out) {
  if (!out || !validate_cov_bundle(v).empty()) return false;
  out->label = v.get("label")->as_string();
  out->machines = static_cast<uint64_t>(v.get("machines")->as_number());
  CoverageMap m;
  const json::Value* retired = v.get("retired");
  m.retired_el_[0] = parse_hex_u64(*retired->get("el0"));
  m.retired_el_[1] = parse_hex_u64(*retired->get("el1"));
  m.retired_el_[2] = parse_hex_u64(*retired->get("el2"));
  const json::Value* blocks = v.get("blocks");
  for (size_t i = 0; i < blocks->size(); ++i) {
    const json::Value& b = *blocks->at(i);
    BlockCov& dst = m.blocks_[parse_hex_u64(*b.get("pa"))];
    dst.hits = parse_hex_u64(*b.get("hits"));
    dst.max_len = static_cast<uint64_t>(b.get("len")->as_number());
  }
  const json::Value* edges = v.get("edges");
  for (size_t i = 0; i < edges->size(); ++i) {
    const json::Value& e = *edges->at(i);
    m.edges_[{parse_hex_u64(*e.get("from")), parse_hex_u64(*e.get("to"))}] =
        parse_hex_u64(*e.get("hits"));
  }
  const json::Value* regions = v.get("regions");
  for (size_t i = 0; i < regions->size(); ++i) {
    const json::Value& r = *regions->at(i);
    CovRegion reg;
    reg.name = r.get("name")->as_string();
    reg.pa = parse_hex_u64(*r.get("pa"));
    reg.len = static_cast<uint64_t>(r.get("len")->as_number());
    reg.table = r.get("table")->as_string();
    const uint32_t row = static_cast<uint32_t>(r.get("row")->as_number());
    reg.row = row == 0xFFFFFFFFu ? -1 : static_cast<int>(row);
    m.regions_.push_back(std::move(reg));
  }
  out->map = std::move(m);
  return true;
}

CovDiff diff_coverage(const CoverageMap& a, const CoverageMap& b) {
  const CoverageMap sa = a.snapshot();
  const CoverageMap sb = b.snapshot();
  CovDiff d;
  for (const auto& [pa, blk] : sa.blocks()) {
    (void)blk;
    if (sb.blocks().count(pa))
      ++d.common;
    else
      d.only_a.push_back(pa);
  }
  for (const auto& [pa, blk] : sb.blocks()) {
    (void)blk;
    if (!sa.blocks().count(pa)) d.only_b.push_back(pa);
  }
  return d;
}

}  // namespace camo::obs
