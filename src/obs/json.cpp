#include "obs/json.h"

#include <cmath>
#include <cstdio>
#include <cstring>

namespace camo::obs::json {

std::string number_to_string(double d) {
  if (std::isnan(d) || std::isinf(d)) return "0";  // JSON has no NaN/Inf
  // Integers (within the exactly-representable range) print as integers.
  if (d == std::floor(d) && std::fabs(d) < 9.007199254740992e15) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%lld", static_cast<long long>(d));
    return buf;
  }
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.17g", d);
  return buf;
}

std::string Value::escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

const Value* Value::get(const std::string& key) const {
  if (kind_ != Kind::Object) return nullptr;
  for (const auto& [k, v] : obj_)
    if (k == key) return &v;
  return nullptr;
}

const Value* Value::at(size_t i) const {
  if (kind_ != Kind::Array || i >= arr_.size()) return nullptr;
  return &arr_[i];
}

Value& Value::push(Value v) {
  arr_.push_back(std::move(v));
  return arr_.back();
}

Value& Value::set(const std::string& key, Value v) {
  for (auto& [k, existing] : obj_)
    if (k == key) {
      existing = std::move(v);
      return existing;
    }
  obj_.emplace_back(key, std::move(v));
  return obj_.back().second;
}

void Value::dump_to(std::string& out, int indent, int depth) const {
  const auto newline = [&](int d) {
    if (indent <= 0) return;
    out += '\n';
    out.append(static_cast<size_t>(indent * d), ' ');
  };
  switch (kind_) {
    case Kind::Null:
      out += "null";
      break;
    case Kind::Bool:
      out += bool_ ? "true" : "false";
      break;
    case Kind::Number:
      out += number_to_string(num_);
      break;
    case Kind::String:
      out += '"';
      out += escape(str_);
      out += '"';
      break;
    case Kind::Array: {
      out += '[';
      for (size_t i = 0; i < arr_.size(); ++i) {
        if (i) out += ',';
        newline(depth + 1);
        arr_[i].dump_to(out, indent, depth + 1);
      }
      if (!arr_.empty()) newline(depth);
      out += ']';
      break;
    }
    case Kind::Object: {
      out += '{';
      for (size_t i = 0; i < obj_.size(); ++i) {
        if (i) out += ',';
        newline(depth + 1);
        out += '"';
        out += escape(obj_[i].first);
        out += "\":";
        if (indent > 0) out += ' ';
        obj_[i].second.dump_to(out, indent, depth + 1);
      }
      if (!obj_.empty()) newline(depth);
      out += '}';
      break;
    }
  }
}

std::string Value::dump(int indent) const {
  std::string out;
  dump_to(out, indent, 0);
  return out;
}

// ---------------------------------------------------------------------------
// Parser
// ---------------------------------------------------------------------------

namespace {

class Parser {
 public:
  explicit Parser(const std::string& text) : s_(text) {}

  std::optional<Value> run() {
    skip_ws();
    Value v;
    if (!parse_value(v)) return std::nullopt;
    skip_ws();
    if (pos_ != s_.size()) return std::nullopt;  // trailing garbage
    return v;
  }

 private:
  bool parse_value(Value& out) {
    if (depth_ > 200) return false;  // malicious nesting
    if (pos_ >= s_.size()) return false;
    switch (s_[pos_]) {
      case '{': return parse_object(out);
      case '[': return parse_array(out);
      case '"': {
        std::string str;
        if (!parse_string(str)) return false;
        out = Value(std::move(str));
        return true;
      }
      case 't':
        if (!literal("true")) return false;
        out = Value(true);
        return true;
      case 'f':
        if (!literal("false")) return false;
        out = Value(false);
        return true;
      case 'n':
        if (!literal("null")) return false;
        out = Value();
        return true;
      default:
        return parse_number(out);
    }
  }

  bool parse_object(Value& out) {
    ++depth_;
    ++pos_;  // '{'
    out = Value::object();
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      --depth_;
      return true;
    }
    while (true) {
      skip_ws();
      std::string key;
      if (!parse_string(key)) return false;
      skip_ws();
      if (peek() != ':') return false;
      ++pos_;
      skip_ws();
      Value v;
      if (!parse_value(v)) return false;
      out.set(key, std::move(v));
      skip_ws();
      const char c = peek();
      if (c == ',') {
        ++pos_;
        continue;
      }
      if (c == '}') {
        ++pos_;
        --depth_;
        return true;
      }
      return false;
    }
  }

  bool parse_array(Value& out) {
    ++depth_;
    ++pos_;  // '['
    out = Value::array();
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      --depth_;
      return true;
    }
    while (true) {
      skip_ws();
      Value v;
      if (!parse_value(v)) return false;
      out.push(std::move(v));
      skip_ws();
      const char c = peek();
      if (c == ',') {
        ++pos_;
        continue;
      }
      if (c == ']') {
        ++pos_;
        --depth_;
        return true;
      }
      return false;
    }
  }

  bool parse_string(std::string& out) {
    if (peek() != '"') return false;
    ++pos_;
    out.clear();
    while (pos_ < s_.size()) {
      const char c = s_[pos_++];
      if (c == '"') return true;
      if (static_cast<unsigned char>(c) < 0x20) return false;  // raw control
      if (c != '\\') {
        out += c;
        continue;
      }
      if (pos_ >= s_.size()) return false;
      const char e = s_[pos_++];
      switch (e) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': {
          if (pos_ + 4 > s_.size()) return false;
          unsigned cp = 0;
          for (int i = 0; i < 4; ++i) {
            const char h = s_[pos_++];
            cp <<= 4;
            if (h >= '0' && h <= '9') cp |= static_cast<unsigned>(h - '0');
            else if (h >= 'a' && h <= 'f') cp |= static_cast<unsigned>(h - 'a' + 10);
            else if (h >= 'A' && h <= 'F') cp |= static_cast<unsigned>(h - 'A' + 10);
            else return false;
          }
          // Encode the BMP code point as UTF-8 (surrogate pairs rejoined as
          // two separate escapes are out of scope; emit replacement bytes).
          if (cp < 0x80) {
            out += static_cast<char>(cp);
          } else if (cp < 0x800) {
            out += static_cast<char>(0xC0 | (cp >> 6));
            out += static_cast<char>(0x80 | (cp & 0x3F));
          } else {
            out += static_cast<char>(0xE0 | (cp >> 12));
            out += static_cast<char>(0x80 | ((cp >> 6) & 0x3F));
            out += static_cast<char>(0x80 | (cp & 0x3F));
          }
          break;
        }
        default:
          return false;
      }
    }
    return false;  // unterminated
  }

  bool parse_number(Value& out) {
    const size_t start = pos_;
    if (peek() == '-') ++pos_;
    if (!std::isdigit(static_cast<unsigned char>(peek()))) return false;
    while (std::isdigit(static_cast<unsigned char>(peek()))) ++pos_;
    if (peek() == '.') {
      ++pos_;
      if (!std::isdigit(static_cast<unsigned char>(peek()))) return false;
      while (std::isdigit(static_cast<unsigned char>(peek()))) ++pos_;
    }
    if (peek() == 'e' || peek() == 'E') {
      ++pos_;
      if (peek() == '+' || peek() == '-') ++pos_;
      if (!std::isdigit(static_cast<unsigned char>(peek()))) return false;
      while (std::isdigit(static_cast<unsigned char>(peek()))) ++pos_;
    }
    out = Value(std::strtod(s_.c_str() + start, nullptr));
    return true;
  }

  bool literal(const char* lit) {
    const size_t n = std::strlen(lit);
    if (s_.compare(pos_, n, lit) != 0) return false;
    pos_ += n;
    return true;
  }

  char peek() const { return pos_ < s_.size() ? s_[pos_] : '\0'; }
  void skip_ws() {
    while (pos_ < s_.size() &&
           (s_[pos_] == ' ' || s_[pos_] == '\t' || s_[pos_] == '\n' ||
            s_[pos_] == '\r'))
      ++pos_;
  }

  const std::string& s_;
  size_t pos_ = 0;
  int depth_ = 0;
};

}  // namespace

std::optional<Value> Value::parse(const std::string& text) {
  return Parser(text).run();
}

}  // namespace camo::obs::json
