// Cycle-attributed flat profiler.
//
// The Machine registers one region per guest kernel symbol (plus one per
// loaded user image); the profiler then buckets every retired cycle by the
// region containing the pc it retired at. Cycles retired outside any region
// (bootloader stubs, unmapped pc) land in the "[other]" catch-all, so the
// per-region sum always equals Cpu::cycles() exactly — the invariant the
// tests pin. The region lookup itself lives in obs/region.h, shared with the
// call-graph profiler.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "obs/region.h"
#include "obs/trace.h"

namespace camo::obs {

class Profiler : public CycleAttributor {
 public:
  struct Region {
    std::string name;
    uint64_t start = 0;  ///< first VA covered
    uint64_t end = 0;    ///< one past the last VA covered
    uint64_t cycles = 0;
    uint64_t retires = 0;  ///< retired steps attributed here
  };

  /// Register [start, end) under `name`. Regions must not overlap; call
  /// before attaching the profiler to a CPU.
  void add_region(std::string name, uint64_t start, uint64_t end);

  void retire(uint64_t pc, uint8_t el, uint8_t op_class,
              uint64_t cycles) override;

  /// All regions with attributed cycles, hottest first. Includes "[other]"
  /// when anything fell outside the registered regions.
  std::vector<Region> entries() const;

  /// Sum of all attributed cycles (== Cpu::cycles() when attached for the
  /// whole run).
  uint64_t total_cycles() const;
  uint64_t total_retires() const;

  /// Human-readable flat profile (cycles, %, retires, symbol).
  std::string flat_profile() const;

  void clear();

 private:
  struct Counts {
    uint64_t cycles = 0;
    uint64_t retires = 0;
  };

  RegionIndex index_;
  std::vector<Counts> counts_;  ///< parallel to index_
  Counts other_;
};

}  // namespace camo::obs
