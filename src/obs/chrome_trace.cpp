#include "obs/chrome_trace.h"

#include "obs/json.h"
#include "support/format.h"

namespace camo::obs {

namespace {

constexpr int kPid = 1;
constexpr int kTidExc = 1;      ///< exception-window lane
constexpr int kTidSyscall = 2;  ///< syscall-window lane
constexpr int kTidPoints = 3;   ///< instant-event lane

json::Value make_event(const char* name, const char* ph, uint64_t ts,
                       int tid) {
  json::Value ev = json::Value::object();
  ev.set("name", json::Value(name));
  ev.set("ph", json::Value(ph));
  ev.set("ts", json::Value(ts));
  ev.set("pid", json::Value(kPid));
  ev.set("tid", json::Value(tid));
  return ev;
}

}  // namespace

std::string chrome_trace_json(const std::vector<TraceEvent>& events) {
  json::Value trace = json::Value::array();

  // Lane names first (metadata events; position in the array is irrelevant
  // but leading with them keeps the file easy to eyeball).
  const struct {
    int tid;
    const char* name;
  } lanes[] = {{kTidExc, "exceptions"},
               {kTidSyscall, "syscalls"},
               {kTidPoints, "events"}};
  for (const auto& lane : lanes) {
    json::Value ev = make_event("thread_name", "M", 0, lane.tid);
    json::Value args = json::Value::object();
    args.set("name", json::Value(lane.name));
    ev.set("args", std::move(args));
    trace.push(std::move(ev));
  }

  int exc_depth = 0;
  int sys_depth = 0;
  uint64_t last_ts = 0;

  for (const TraceEvent& e : events) {
    if (e.cycles > last_ts) last_ts = e.cycles;
    switch (e.kind) {
      case EventKind::ExcEnter: {
        json::Value ev = make_event(exc_class_label(e.k1), "B", e.cycles,
                                    kTidExc);
        json::Value args = json::Value::object();
        args.set("pc", json::Value(strformat("0x%llx",
                                             (unsigned long long)e.pc)));
        args.set("from_el", json::Value(static_cast<uint64_t>(e.el)));
        if (e.imm) args.set("iss", json::Value(static_cast<uint64_t>(e.imm)));
        ev.set("args", std::move(args));
        trace.push(std::move(ev));
        ++exc_depth;
        break;
      }
      case EventKind::ExcExit:
        // Depth guard: a wrapped ring can start mid-window; an exit with no
        // recorded entry would unbalance the B/E stream.
        if (exc_depth > 0) {
          trace.push(make_event("", "E", e.cycles, kTidExc));
          --exc_depth;
        }
        break;
      case EventKind::SyscallEnter: {
        const std::string name = strformat("syscall %u", e.imm);
        trace.push(make_event(name.c_str(), "B", e.cycles, kTidSyscall));
        ++sys_depth;
        break;
      }
      case EventKind::SyscallExit:
        if (sys_depth > 0) {
          trace.push(make_event("", "E", e.cycles, kTidSyscall));
          --sys_depth;
        }
        break;
      case EventKind::AuthFail: {
        const std::string name =
            strformat("auth-fail %s", pac_key_label(e.k1));
        json::Value ev = make_event(name.c_str(), "i", e.cycles, kTidPoints);
        ev.set("s", json::Value("g"));  // global-scope instant
        json::Value args = json::Value::object();
        args.set("ptr", json::Value(strformat("0x%llx",
                                              (unsigned long long)e.a)));
        args.set("modifier", json::Value(strformat("0x%llx",
                                                   (unsigned long long)e.b)));
        ev.set("args", std::move(args));
        trace.push(std::move(ev));
        break;
      }
      case EventKind::KeyWrite: {
        const std::string name =
            strformat("key-write %s", pac_key_label(e.k1));
        json::Value ev = make_event(name.c_str(), "i", e.cycles, kTidPoints);
        ev.set("s", json::Value("t"));
        trace.push(std::move(ev));
        break;
      }
      case EventKind::ContextSwitch: {
        json::Value ev = make_event("context-switch", "i", e.cycles,
                                    kTidPoints);
        ev.set("s", json::Value("g"));
        json::Value args = json::Value::object();
        args.set("prev", json::Value(strformat("0x%llx",
                                               (unsigned long long)e.a)));
        args.set("next", json::Value(strformat("0x%llx",
                                               (unsigned long long)e.b)));
        ev.set("args", std::move(args));
        trace.push(std::move(ev));
        break;
      }
      case EventKind::Stage2Fault: {
        json::Value ev = make_event("stage2-fault", "i", e.cycles, kTidPoints);
        ev.set("s", json::Value("g"));
        json::Value args = json::Value::object();
        args.set("va", json::Value(strformat("0x%llx",
                                             (unsigned long long)e.a)));
        ev.set("args", std::move(args));
        trace.push(std::move(ev));
        break;
      }
      case EventKind::HvcCall: {
        const std::string name = strformat("hvc %u", e.imm);
        json::Value ev = make_event(name.c_str(), "i", e.cycles, kTidPoints);
        ev.set("s", json::Value("t"));
        trace.push(std::move(ev));
        break;
      }
      case EventKind::ModuleLoad: {
        json::Value ev = make_event("module-load", "i", e.cycles, kTidPoints);
        ev.set("s", json::Value("t"));
        trace.push(std::move(ev));
        break;
      }
      case EventKind::MsrDenied: {
        json::Value ev = make_event("msr-denied", "i", e.cycles, kTidPoints);
        ev.set("s", json::Value("t"));
        trace.push(std::move(ev));
        break;
      }
      case EventKind::AttackOutcome: {
        const std::string name =
            strformat("attack: %s", outcome_label(e.k1));
        json::Value ev = make_event(name.c_str(), "i", e.cycles, kTidPoints);
        ev.set("s", json::Value("g"));
        trace.push(std::move(ev));
        break;
      }
      default:
        break;
    }
  }

  // Close any spans the stream left open so viewers see complete windows.
  while (exc_depth-- > 0) trace.push(make_event("", "E", last_ts, kTidExc));
  while (sys_depth-- > 0)
    trace.push(make_event("", "E", last_ts, kTidSyscall));

  json::Value root = json::Value::object();
  root.set("traceEvents", std::move(trace));
  root.set("displayTimeUnit", json::Value("ns"));
  root.set("otherData", [] {
    json::Value od = json::Value::object();
    od.set("source", json::Value("camo::obs"));
    od.set("time_unit", json::Value("1 trace us == 1 guest cycle"));
    return od;
  }());
  return root.dump();
}

}  // namespace camo::obs
