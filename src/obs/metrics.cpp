#include "obs/metrics.h"

#include "obs/json.h"
#include "support/format.h"

namespace camo::obs {

void Registry::merge_from(const Registry& other) {
  for (const auto& [name, c] : other.counters_)
    counters_[name].inc(c.value());
  for (const auto& [name, h] : other.histograms_) histograms_[name].merge(h);
  for (const auto& [name, g] : other.gauges_) gauges_[name].set(g.value());
}

std::string Registry::render_text() const {
  std::string out;
  for (const auto& [name, c] : counters_)
    out += strformat("%-32s %12llu\n", name.c_str(),
                     static_cast<unsigned long long>(c.value()));
  for (const auto& [name, h] : histograms_)
    out += strformat(
        "%-32s n=%llu mean=%.1f p50=%.1f p95=%.1f p99=%.1f min=%llu "
        "max=%llu\n",
        name.c_str(), static_cast<unsigned long long>(h.count()), h.mean(),
        h.p50(), h.p95(), h.p99(), static_cast<unsigned long long>(h.min()),
        static_cast<unsigned long long>(h.max()));
  for (const auto& [name, g] : gauges_)
    out += strformat("%-32s %14.2f\n", name.c_str(), g.value());
  return out;
}

std::string Registry::to_json() const {
  json::Value root = json::Value::object();
  json::Value cs = json::Value::object();
  for (const auto& [name, c] : counters_) cs.set(name, json::Value(c.value()));
  root.set("counters", std::move(cs));
  json::Value hs = json::Value::object();
  for (const auto& [name, h] : histograms_) {
    json::Value stats = json::Value::object();
    stats.set("count", json::Value(h.count()));
    stats.set("sum", json::Value(h.sum()));
    stats.set("min", json::Value(h.min()));
    stats.set("max", json::Value(h.max()));
    stats.set("mean", json::Value(h.mean()));
    stats.set("p50", json::Value(h.p50()));
    stats.set("p95", json::Value(h.p95()));
    stats.set("p99", json::Value(h.p99()));
    json::Value buckets = json::Value::array();
    unsigned top = Histogram::kBuckets;
    while (top > 0 && h.bucket(top - 1) == 0) --top;
    for (unsigned i = 0; i < top; ++i) buckets.push(json::Value(h.bucket(i)));
    stats.set("log2_buckets", std::move(buckets));
    hs.set(name, std::move(stats));
  }
  root.set("histograms", std::move(hs));
  if (!gauges_.empty()) {
    json::Value gs = json::Value::object();
    for (const auto& [name, g] : gauges_) gs.set(name, json::Value(g.value()));
    root.set("gauges", std::move(gs));
  }
  return root.dump(2);
}

}  // namespace camo::obs
