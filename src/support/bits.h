// Bit-manipulation utilities shared by the ISA, MMU, PAuth and cipher code.
//
// All helpers operate on uint64_t and use [lsb, width] field addressing, the
// same convention the ARM ARM uses for <hi:lo> fields.
#pragma once

#include <cstdint>
#include <cassert>

namespace camo {

/// Mask with `width` low-order ones. width == 64 is allowed.
constexpr uint64_t mask(unsigned width) {
  return width >= 64 ? ~uint64_t{0} : ((uint64_t{1} << width) - 1);
}

/// Extract bits [lsb, lsb+width) of v, right-aligned.
constexpr uint64_t bits(uint64_t v, unsigned lsb, unsigned width) {
  return (v >> lsb) & mask(width);
}

/// Extract single bit `pos` of v.
constexpr bool bit(uint64_t v, unsigned pos) { return (v >> pos) & 1; }

/// Return v with bits [lsb, lsb+width) replaced by the low bits of field.
constexpr uint64_t insert_bits(uint64_t v, unsigned lsb, unsigned width,
                               uint64_t field) {
  const uint64_t m = mask(width) << lsb;
  return (v & ~m) | ((field << lsb) & m);
}

/// Sign-extend the low `width` bits of v to 64 bits.
constexpr int64_t sign_extend(uint64_t v, unsigned width) {
  assert(width >= 1 && width <= 64);
  const uint64_t sign = uint64_t{1} << (width - 1);
  v &= mask(width);
  return static_cast<int64_t>((v ^ sign) - sign);
}

/// Rotate right within 64 bits.
constexpr uint64_t ror64(uint64_t v, unsigned n) {
  n &= 63;
  return n == 0 ? v : (v >> n) | (v << (64 - n));
}

/// Rotate left within 64 bits.
constexpr uint64_t rol64(uint64_t v, unsigned n) { return ror64(v, 64 - n); }

/// Is v aligned to `align` (a power of two)?
constexpr bool is_aligned(uint64_t v, uint64_t align) {
  return (v & (align - 1)) == 0;
}

/// Round v up to the next multiple of `align` (a power of two).
constexpr uint64_t align_up(uint64_t v, uint64_t align) {
  return (v + align - 1) & ~(align - 1);
}

/// Round v down to a multiple of `align` (a power of two).
constexpr uint64_t align_down(uint64_t v, uint64_t align) {
  return v & ~(align - 1);
}

}  // namespace camo
