// Error reporting for host-level misuse (not for modeled hardware faults —
// those are values, see cpu/exception.h).
//
// Programming errors in *host* code (invalid encodings handed to the
// assembler, out-of-range physical addresses, linker failures) throw
// camo::Error; modeled guest faults (translation faults, PAuth failures)
// never throw — they are part of the simulated machine state.
#pragma once

#include <stdexcept>
#include <string>

namespace camo {

class Error : public std::runtime_error {
 public:
  explicit Error(const std::string& what) : std::runtime_error(what) {}
};

[[noreturn]] inline void fail(const std::string& what) { throw Error(what); }

}  // namespace camo
