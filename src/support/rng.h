// Deterministic pseudo-random number generators.
//
// The bootloader uses these to generate kernel PAuth keys (the paper generates
// them "much like the random seed for kernel ASLR", passed via the FDT).
// SplitMix64 seeds Xoshiro256**; both are standard public-domain algorithms.
#pragma once

#include <array>
#include <cstdint>

namespace camo {

/// SplitMix64: used for seeding and as a cheap stateless mixer.
class SplitMix64 {
 public:
  explicit constexpr SplitMix64(uint64_t seed) : state_(seed) {}

  constexpr uint64_t next() {
    uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

 private:
  uint64_t state_;
};

/// Xoshiro256**: the general-purpose PRNG used for key generation and
/// randomized workloads. Deterministic given the seed, so every experiment
/// in this repository is reproducible.
class Xoshiro256 {
 public:
  explicit Xoshiro256(uint64_t seed) {
    SplitMix64 sm(seed);
    for (auto& s : state_) s = sm.next();
  }

  uint64_t next() {
    const uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  /// Uniform value in [0, bound). bound must be nonzero.
  uint64_t next_below(uint64_t bound) { return next() % bound; }

  /// Standard UniformRandomBitGenerator interface so <algorithm> shuffles work.
  using result_type = uint64_t;
  static constexpr uint64_t min() { return 0; }
  static constexpr uint64_t max() { return ~uint64_t{0}; }
  uint64_t operator()() { return next(); }

 private:
  static constexpr uint64_t rotl(uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }
  std::array<uint64_t, 4> state_{};
};

}  // namespace camo
