#include "support/format.h"

#include <cstdarg>
#include <cstdio>
#include <vector>

namespace camo {

std::string hex(uint64_t v, int digits) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "0x%0*llx", digits,
                static_cast<unsigned long long>(v));
  return buf;
}

std::string hex_short(uint64_t v) {
  char buf[32];
  std::snprintf(buf, sizeof buf, "0x%llx", static_cast<unsigned long long>(v));
  return buf;
}

std::string strformat(const char* fmt, ...) {
  va_list ap;
  va_start(ap, fmt);
  va_list ap2;
  va_copy(ap2, ap);
  const int n = std::vsnprintf(nullptr, 0, fmt, ap);
  va_end(ap);
  std::string out;
  if (n > 0) {
    std::vector<char> buf(static_cast<size_t>(n) + 1);
    std::vsnprintf(buf.data(), buf.size(), fmt, ap2);
    out.assign(buf.data(), static_cast<size_t>(n));
  }
  va_end(ap2);
  return out;
}

}  // namespace camo
