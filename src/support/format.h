// Small formatting helpers used by the disassembler, loggers and benches.
#pragma once

#include <cstdint>
#include <string>

namespace camo {

/// Format v as a 0x-prefixed lower-case hex string with `digits` digits.
std::string hex(uint64_t v, int digits = 16);

/// Format v as a short hex string without leading zeros (still 0x-prefixed).
std::string hex_short(uint64_t v);

/// printf-style formatting into a std::string.
std::string strformat(const char* fmt, ...) __attribute__((format(printf, 1, 2)));

}  // namespace camo
